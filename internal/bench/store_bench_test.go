package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specmine/internal/seqdb"
	"specmine/internal/store"
	"specmine/internal/stream"
)

// replayDurable runs the full durable ingestion lifecycle in dir: open a
// fresh store, adopt the pre-generated dictionary (fresh store, so ids map
// 1:1), replay the operation stream through a durable ingester — WAL appends
// before every ack, segment flushes at the batch barriers — take the final
// snapshot and close everything.
func replayDurable(dir string, c StreamCase, dict *seqdb.Dictionary, ops []StreamOp) error {
	st, err := store.Open(store.Options{Dir: dir, Shards: c.Shards})
	if err != nil {
		return err
	}
	for _, name := range dict.Export() {
		st.Dict().Intern(name)
	}
	ing, err := stream.Open(stream.Config{FlushBatch: c.FlushBatch, Store: st})
	if err != nil {
		return err
	}
	for _, op := range ops {
		if op.Seal {
			err = ing.CloseTrace(op.TraceID)
		} else {
			err = ing.IngestIDs(op.TraceID, op.Events...)
		}
		if err != nil {
			return err
		}
	}
	v, err := ing.Snapshot()
	if err != nil {
		return err
	}
	if v.DB.NumSequences() != c.Traces {
		return fmt.Errorf("snapshot has %d traces want %d", v.DB.NumSequences(), c.Traces)
	}
	if err := ing.Close(); err != nil {
		return err
	}
	return st.Close()
}

// replayMemory is the same stream through a memory-only ingester — the
// baseline the durable path is compared against.
func replayMemory(c StreamCase, dict *seqdb.Dictionary, ops []StreamOp) error {
	ing := stream.NewIngester(stream.Config{Shards: c.Shards, FlushBatch: c.FlushBatch, Dict: dict})
	for _, op := range ops {
		var err error
		if op.Seal {
			err = ing.CloseTrace(op.TraceID)
		} else {
			err = ing.IngestIDs(op.TraceID, op.Events...)
		}
		if err != nil {
			return err
		}
	}
	if _, err := ing.Snapshot(); err != nil {
		return err
	}
	return ing.Close()
}

// BenchmarkStoreIngest compares durable ingestion (write-ahead logged,
// segment-flushed, group-committed) against the in-memory ingester on the
// same pre-generated operation stream. The acceptance bar for the store
// subsystem is durable >= 25% of memory events/sec.
func BenchmarkStoreIngest(b *testing.B) {
	for _, c := range StoreCases() {
		dict, ops, _, events := c.GenStream()
		b.Run(c.Name+"/durable", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir, err := os.MkdirTemp("", "specmine-store-bench-*")
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := replayDurable(dir, c, dict, ops); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				os.RemoveAll(dir)
				b.StartTimer()
			}
			b.ReportMetric(float64(events), "events/op")
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
		b.Run(c.Name+"/memory", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := replayMemory(c, dict, ops); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(events), "events/op")
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkRecover measures cold-start recovery: segments load, the WAL tail
// replays, and the merged database's flat index is rebuilt — the events/sec
// a restarted process achieves getting back to mining-ready state.
func BenchmarkRecover(b *testing.B) {
	for _, c := range StoreCases() {
		dict, ops, _, events := c.GenStream()
		dir := filepath.Join(b.TempDir(), "recover-"+c.Name)
		if err := replayDurable(dir, c, dict, ops); err != nil {
			b.Fatal(err)
		}
		b.Run(c.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := store.Open(store.Options{Dir: dir})
				if err != nil {
					b.Fatal(err)
				}
				db := st.Recovered().Database(st.Dict())
				if db.NumSequences() != c.Traces {
					b.Fatalf("recovered %d traces want %d", db.NumSequences(), c.Traces)
				}
				db.FlatIndex()
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(events), "events/op")
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// storeFootprint walks a closed store directory and reports its on-disk
// shape for the trajectory file.
func storeFootprint(dir string) (walBytes, segBytes int64, segments int, err error) {
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		switch {
		case strings.HasSuffix(path, ".wal"):
			walBytes += info.Size()
		case strings.HasSuffix(path, ".seg"):
			segBytes += info.Size()
			segments++
		}
		return nil
	})
	return walBytes, segBytes, segments, err
}

// TestDurableIngestThroughputFloor guards the acceptance criterion with a
// generous margin for noisy CI machines: durable ingestion must sustain at
// least 10% of in-memory throughput here (the trajectory records the real
// ratio; benchguard watches the headline as a soft row).
func TestDurableIngestThroughputFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison is not meaningful in -short runs")
	}
	c := StoreCases()[0]
	dict, ops, _, _ := c.GenStream()
	best := func(run func() error) float64 {
		fastest := 0.0
		for i := 0; i < 3; i++ {
			res := testing.Benchmark(func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					if err := run(); err != nil {
						b.Fatal(err)
					}
				}
			})
			if ops := 1e9 / float64(res.NsPerOp()); ops > fastest {
				fastest = ops
			}
		}
		return fastest
	}
	durable := best(func() error {
		dir, err := os.MkdirTemp("", "specmine-floor-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		return replayDurable(dir, c, dict, ops)
	})
	memory := best(func() error { return replayMemory(c, dict, ops) })
	ratio := durable / memory
	t.Logf("durable/memory throughput ratio: %.2f", ratio)
	if ratio < 0.10 {
		t.Fatalf("durable ingest sustains only %.1f%% of in-memory throughput (floor 10%%)", ratio*100)
	}
}
