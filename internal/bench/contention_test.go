package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"specmine/internal/seqdb"
	"specmine/internal/stream"
)

// Dictionary-contention smoke check. The sharded dictionary exists so that
// concurrent producers interning event names do not serialise on one lock;
// this test measures, via the runtime's mutex profile, what share of the
// lock contention in a concurrent stream-ingest workload is attributable to
// seqdb.Dictionary, and fails when it exceeds dictContentionShare. CI runs it
// as a dedicated step at GOMAXPROCS=$(nproc), where a regression to a single
// dictionary lock shows up as the dominant contention site.

const (
	// dictContentionShare is the maximum fraction of sampled mutex-wait
	// cycles allowed to come from dictionary internals.
	dictContentionShare = 0.20

	// contentionFloorCycles is the minimum total sampled wait below which
	// the share is not judged: with almost no contention at all (a
	// single-processor runner, or a fast machine sailing through the
	// workload), the ratio of two tiny numbers is noise, and the situation
	// the check exists to catch — producers queueing on the dictionary —
	// is absent by construction.
	contentionFloorCycles = 10_000_000
)

// mutexCycles snapshots the cumulative mutex profile: total sampled wait
// cycles, and the portion whose stack passes through a *seqdb.Dictionary
// method. Called before and after the workload; the deltas isolate it.
func mutexCycles() (total, dict int64) {
	n, _ := runtime.MutexProfile(nil)
	recs := make([]runtime.BlockProfileRecord, n+64)
	n, ok := runtime.MutexProfile(recs)
	if !ok {
		recs = make([]runtime.BlockProfileRecord, 2*len(recs))
		n, _ = runtime.MutexProfile(recs)
	}
	for _, r := range recs[:n] {
		total += r.Cycles
		frames := runtime.CallersFrames(r.Stack())
		for {
			f, more := frames.Next()
			if strings.Contains(f.Function, "seqdb.(*Dictionary)") {
				dict += r.Cycles
				break
			}
			if !more {
				break
			}
		}
	}
	return total, dict
}

func TestDictionaryContentionShare(t *testing.T) {
	prevFrac := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prevFrac)

	procs := runtime.NumCPU()
	if procs < 4 {
		procs = 4
	}
	prevProcs := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prevProcs)

	// A shared vocabulary smaller than the total event volume, so most
	// Intern calls are lookups of hot names from all producers at once —
	// the worst case for a single-lock dictionary and the common case for
	// real trace streams. Pre-intern the vocabulary: the one-time cold-start
	// burst of first assignments takes writer locks on any dictionary, even
	// a perfectly sharded one, and is not the steady state this check
	// judges. A regression to a single exclusive lock still fails, because
	// then every hot lookup below contends, not just the assignments.
	vocab := make([]string, 512)
	warmDict := seqdb.NewDictionary()
	for i := range vocab {
		vocab[i] = fmt.Sprintf("evt-%03d", i)
		warmDict.Intern(vocab[i])
	}

	totalBefore, dictBefore := mutexCycles()

	const (
		producers      = 8
		tracesPerProd  = 40
		chunksPerTrace = 12
		chunkEvents    = 16
	)
	ing := stream.NewIngester(stream.Config{Shards: 4, Dict: warmDict})
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)*7919 + 1))
			chunk := make([]string, chunkEvents)
			for tr := 0; tr < tracesPerProd; tr++ {
				id := fmt.Sprintf("p%d-t%d", p, tr)
				for c := 0; c < chunksPerTrace; c++ {
					for i := range chunk {
						chunk[i] = vocab[rng.Intn(len(vocab))]
					}
					if err := ing.Ingest(id, chunk...); err != nil {
						errs <- err
						return
					}
				}
				if err := ing.CloseTrace(id); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, err := ing.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	totalAfter, dictAfter := mutexCycles()
	total := totalAfter - totalBefore
	dict := dictAfter - dictBefore
	if total < contentionFloorCycles {
		t.Logf("total contention %d cycles below floor %d — workload did not contend enough to judge shares", total, contentionFloorCycles)
		return
	}
	share := float64(dict) / float64(total)
	t.Logf("dictionary contention: %d of %d sampled wait cycles (%.1f%%)", dict, total, 100*share)
	if share > dictContentionShare {
		t.Fatalf("dictionary accounts for %.1f%% of mutex contention (limit %.0f%%) — interning is serialising producers again",
			100*share, 100*dictContentionShare)
	}
}
