// Package synth generates synthetic sequence databases in the style of the
// IBM Quest data generator that the paper's performance study uses
// ("Synthetic data generator provided by IBM was used with modification to
// ensure generation of sequences of events", Section 6).
//
// The generator is parameterised the same way as the paper's dataset names:
// D (number of sequences, in thousands), C (average number of events per
// sequence), N (number of distinct events, in thousands) and S (average
// number of events in the maximal seed sequences). The paper's experiments
// run on D5C20N10S20.
//
// Generation follows the Quest recipe: a pool of weighted "maximal" seed
// patterns is drawn first; each database sequence is then assembled by
// embedding corrupted copies of seed patterns (events dropped with a small
// probability) interleaved with uniform noise events, until the target length
// is reached. The result is a database in which long patterns recur both
// across and within sequences — exactly the regime in which the closed /
// non-redundant miners pay off.
package synth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"regexp"
	"strconv"

	"specmine/internal/seqdb"
)

// Config parameterises the generator.
type Config struct {
	// NumSequences is the number of sequences to generate (the paper's D
	// parameter times 1000).
	NumSequences int
	// AvgSequenceLength is the average number of events per sequence (C).
	AvgSequenceLength int
	// NumEvents is the number of distinct events (N times 1000).
	NumEvents int
	// AvgPatternLength is the average length of the maximal seed patterns (S).
	AvgPatternLength int
	// NumSeedPatterns is the size of the seed-pattern pool. The Quest
	// generator calls these "maximal sequences"; the default is 100.
	NumSeedPatterns int
	// CorruptionLevel is the probability that an event of a seed pattern is
	// dropped when the pattern is embedded into a sequence. Default 0.25.
	CorruptionLevel float64
	// NoiseRate is the probability, per emitted event, of inserting a uniform
	// random event instead of continuing the current seed pattern.
	// Default 0.1.
	NoiseRate float64
	// Seed drives the deterministic pseudo-random stream.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumSequences < 1 {
		return errors.New("synth: NumSequences must be >= 1")
	}
	if c.AvgSequenceLength < 1 {
		return errors.New("synth: AvgSequenceLength must be >= 1")
	}
	if c.NumEvents < 1 {
		return errors.New("synth: NumEvents must be >= 1")
	}
	if c.AvgPatternLength < 1 {
		return errors.New("synth: AvgPatternLength must be >= 1")
	}
	if c.CorruptionLevel < 0 || c.CorruptionLevel >= 1 {
		return errors.New("synth: CorruptionLevel must be in [0, 1)")
	}
	if c.NoiseRate < 0 || c.NoiseRate >= 1 {
		return errors.New("synth: NoiseRate must be in [0, 1)")
	}
	if c.NumSeedPatterns < 0 {
		return errors.New("synth: NumSeedPatterns must be >= 0")
	}
	return nil
}

// withDefaults fills in the optional knobs.
func (c Config) withDefaults() Config {
	if c.NumSeedPatterns == 0 {
		c.NumSeedPatterns = 100
	}
	if c.CorruptionLevel == 0 {
		c.CorruptionLevel = 0.25
	}
	if c.NoiseRate == 0 {
		c.NoiseRate = 0.1
	}
	return c
}

// Name renders the configuration in the paper's DxCxNxSx naming convention
// (D and N in thousands).
func (c Config) Name() string {
	return fmt.Sprintf("D%gC%dN%gS%d",
		float64(c.NumSequences)/1000, c.AvgSequenceLength,
		float64(c.NumEvents)/1000, c.AvgPatternLength)
}

var specRe = regexp.MustCompile(`^D([0-9.]+)C([0-9]+)N([0-9.]+)S([0-9]+)$`)

// ParseSpec parses the paper's dataset naming convention, e.g.
// "D5C20N10S20" -> 5000 sequences, average length 20, 10000 events, seed
// pattern length 20.
func ParseSpec(spec string) (Config, error) {
	m := specRe.FindStringSubmatch(spec)
	if m == nil {
		return Config{}, fmt.Errorf("synth: cannot parse dataset spec %q (want DxCxNxSx)", spec)
	}
	d, err1 := strconv.ParseFloat(m[1], 64)
	cAvg, err2 := strconv.Atoi(m[2])
	n, err3 := strconv.ParseFloat(m[3], 64)
	s, err4 := strconv.Atoi(m[4])
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		return Config{}, fmt.Errorf("synth: cannot parse dataset spec %q", spec)
	}
	cfg := Config{
		NumSequences:      int(d * 1000),
		AvgSequenceLength: cAvg,
		NumEvents:         int(n * 1000),
		AvgPatternLength:  s,
	}
	return cfg, cfg.Validate()
}

// Generate produces the database described by the configuration. The same
// configuration and seed always produce the same database.
func Generate(cfg Config) (*seqdb.Database, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	db := seqdb.NewDatabase()
	for i := 0; i < cfg.NumEvents; i++ {
		db.Dict.Intern(fmt.Sprintf("e%d", i))
	}

	seeds := makeSeedPatterns(cfg, rng)
	weights := makeWeights(len(seeds), rng)

	for i := 0; i < cfg.NumSequences; i++ {
		target := poisson(rng, float64(cfg.AvgSequenceLength))
		if target < 1 {
			target = 1
		}
		seq := make(seqdb.Sequence, 0, target)
		for len(seq) < target {
			if len(seeds) == 0 || rng.Float64() < cfg.NoiseRate {
				seq = append(seq, seqdb.EventID(rng.Intn(cfg.NumEvents)))
				continue
			}
			seed := seeds[pickWeighted(rng, weights)]
			for _, ev := range seed {
				if rng.Float64() < cfg.CorruptionLevel {
					continue // corrupted: event dropped from this embedding
				}
				if rng.Float64() < cfg.NoiseRate {
					seq = append(seq, seqdb.EventID(rng.Intn(cfg.NumEvents)))
				}
				seq = append(seq, ev)
				if len(seq) >= target {
					break
				}
			}
		}
		db.Append(seq)
	}
	return db, nil
}

// MustGenerate is Generate for callers with static configurations (examples,
// benchmarks); it panics on configuration errors.
func MustGenerate(cfg Config) *seqdb.Database {
	db, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return db
}

// makeSeedPatterns draws the pool of maximal seed patterns. Pattern lengths
// follow a Poisson distribution around S (minimum 2); events are drawn from a
// skewed (quadratic) distribution so that a subset of the alphabet is hot,
// mirroring the locality of real method-call traces.
func makeSeedPatterns(cfg Config, rng *rand.Rand) []seqdb.Pattern {
	seeds := make([]seqdb.Pattern, 0, cfg.NumSeedPatterns)
	for i := 0; i < cfg.NumSeedPatterns; i++ {
		length := poisson(rng, float64(cfg.AvgPatternLength))
		if length < 2 {
			length = 2
		}
		p := make(seqdb.Pattern, length)
		for j := range p {
			p[j] = skewedEvent(rng, cfg.NumEvents)
		}
		seeds = append(seeds, p)
	}
	return seeds
}

// skewedEvent picks an event id with a quadratically decaying distribution:
// low ids are much more likely than high ids.
func skewedEvent(rng *rand.Rand, n int) seqdb.EventID {
	f := rng.Float64()
	return seqdb.EventID(int(f * f * float64(n)))
}

// makeWeights draws exponential weights normalised to sum to 1, mirroring the
// Quest generator's pattern-frequency distribution.
func makeWeights(n int, rng *rand.Rand) []float64 {
	if n == 0 {
		return nil
	}
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = rng.ExpFloat64()
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

func pickWeighted(rng *rand.Rand, weights []float64) int {
	f := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if f <= acc {
			return i
		}
	}
	return len(weights) - 1
}

// poisson draws from a Poisson distribution with the given mean using Knuth's
// method for small means and a normal approximation for large ones.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(rng.NormFloat64()*math.Sqrt(mean) + mean + 0.5)
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		k++
		p *= rng.Float64()
		if p <= l {
			return k - 1
		}
	}
}
