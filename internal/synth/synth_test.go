package synth

import (
	"math"
	"testing"

	"specmine/internal/seqdb"
)

func TestConfigValidate(t *testing.T) {
	valid := Config{NumSequences: 10, AvgSequenceLength: 5, NumEvents: 20, AvgPatternLength: 3}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{},
		{NumSequences: 10, AvgSequenceLength: 0, NumEvents: 20, AvgPatternLength: 3},
		{NumSequences: 10, AvgSequenceLength: 5, NumEvents: 0, AvgPatternLength: 3},
		{NumSequences: 10, AvgSequenceLength: 5, NumEvents: 20, AvgPatternLength: 0},
		{NumSequences: 10, AvgSequenceLength: 5, NumEvents: 20, AvgPatternLength: 3, CorruptionLevel: 1.5},
		{NumSequences: 10, AvgSequenceLength: 5, NumEvents: 20, AvgPatternLength: 3, NoiseRate: -0.1},
		{NumSequences: 10, AvgSequenceLength: 5, NumEvents: 20, AvgPatternLength: 3, NumSeedPatterns: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Generate(Config{}); err == nil {
		t.Errorf("Generate accepted invalid config")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("D5C20N10S20")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumSequences != 5000 || cfg.AvgSequenceLength != 20 || cfg.NumEvents != 10000 || cfg.AvgPatternLength != 20 {
		t.Errorf("ParseSpec wrong: %+v", cfg)
	}
	if cfg.Name() != "D5C20N10S20" {
		t.Errorf("Name round trip: %s", cfg.Name())
	}
	small, err := ParseSpec("D0.2C10N0.05S8")
	if err != nil {
		t.Fatal(err)
	}
	if small.NumSequences != 200 || small.NumEvents != 50 {
		t.Errorf("fractional spec wrong: %+v", small)
	}
	if _, err := ParseSpec("garbage"); err == nil {
		t.Errorf("garbage spec accepted")
	}
	if _, err := ParseSpec("D0C10N1S5"); err == nil {
		t.Errorf("zero-sequence spec accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Config{NumSequences: 300, AvgSequenceLength: 15, NumEvents: 100, AvgPatternLength: 6, Seed: 1}
	db, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSequences() != 300 {
		t.Fatalf("NumSequences=%d want 300", db.NumSequences())
	}
	if err := db.Validate(); err != nil {
		t.Fatalf("generated database invalid: %v", err)
	}
	st := seqdb.ComputeStats(db)
	if math.Abs(st.MeanLength-15) > 3 {
		t.Errorf("mean length %.1f too far from configured 15", st.MeanLength)
	}
	if st.DistinctEvents < 20 || st.DistinctEvents > 100 {
		t.Errorf("distinct events %d outside plausible range", st.DistinctEvents)
	}
	if st.MinLength < 1 {
		t.Errorf("empty sequence generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{NumSequences: 50, AvgSequenceLength: 10, NumEvents: 30, AvgPatternLength: 4, Seed: 42}
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if a.NumSequences() != b.NumSequences() || a.NumEvents() != b.NumEvents() {
		t.Fatalf("same seed produced different shapes")
	}
	for i := range a.Sequences {
		if len(a.Sequences[i]) != len(b.Sequences[i]) {
			t.Fatalf("sequence %d lengths differ", i)
		}
		for j := range a.Sequences[i] {
			if a.Sequences[i][j] != b.Sequences[i][j] {
				t.Fatalf("sequence %d differs at position %d", i, j)
			}
		}
	}
	c := MustGenerate(Config{NumSequences: 50, AvgSequenceLength: 10, NumEvents: 30, AvgPatternLength: 4, Seed: 43})
	same := true
	for i := range a.Sequences {
		if len(a.Sequences[i]) != len(c.Sequences[i]) {
			same = false
			break
		}
		for j := range a.Sequences[i] {
			if a.Sequences[i][j] != c.Sequences[i][j] {
				same = false
				break
			}
		}
		if !same {
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical databases")
	}
}

func TestGenerateEmbedsRecurringPatterns(t *testing.T) {
	// The generator must actually embed recurring structure: some event pair
	// should appear as a subsequence in a substantial fraction of sequences.
	cfg := Config{NumSequences: 200, AvgSequenceLength: 12, NumEvents: 200, AvgPatternLength: 6, Seed: 7, NumSeedPatterns: 20}
	db := MustGenerate(cfg)
	top := seqdb.TopEvents(db, 1)
	if len(top) == 0 {
		t.Fatal("no events generated")
	}
	if top[0].Count < db.NumSequences()/4 {
		t.Errorf("hottest event occurs only %d times over %d sequences: seed patterns not recurring enough",
			top[0].Count, db.NumSequences())
	}
}

func TestMustGeneratePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustGenerate did not panic on invalid config")
		}
	}()
	MustGenerate(Config{})
}
