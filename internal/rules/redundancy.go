package rules

import (
	"fmt"
	"sort"
)

// removeRedundant applies Definition 5.2 to the mined rule set (step 5 of the
// mining outline): a rule RX is redundant when another rule RY with identical
// s-support, i-support and confidence has a concatenation that is a proper
// super-sequence of RX's, or the same concatenation with a shorter premise.
func (m *ruleMiner) removeRedundant(in []Rule) []Rule {
	kept := make([]Rule, 0, len(in))
	for _, r := range in {
		if IsRedundant(r, in) {
			m.stats.RulesSuppressedRedundant++
			continue
		}
		kept = append(kept, r)
	}
	return kept
}

// IsRedundant reports whether rule r is redundant with respect to some other
// rule in the set, per Definition 5.2.
func IsRedundant(r Rule, set []Rule) bool {
	rc := r.Concat()
	for _, other := range set {
		if other.SeqSupport != r.SeqSupport ||
			other.InstanceSupport != r.InstanceSupport ||
			!floatEqual(other.Confidence, r.Confidence) {
			continue
		}
		oc := other.Concat()
		if r.Pre.Equal(other.Pre) && r.Post.Equal(other.Post) {
			continue // the same rule
		}
		if rc.Equal(oc) {
			// Same concatenation: the rule with the longer premise (and hence
			// the shorter consequent) is the redundant one.
			if len(r.Pre) > len(other.Pre) {
				return true
			}
			continue
		}
		if len(oc) > len(rc) && rc.IsSubsequenceOf(oc) {
			return true
		}
	}
	return false
}

// FilterRedundant returns the non-redundant subset of the given rules. It is
// exposed so that callers holding a full rule set (for example from MineFull)
// can derive the non-redundant view without re-mining.
func FilterRedundant(in []Rule) []Rule {
	out := make([]Rule, 0, len(in))
	for _, r := range in {
		if !IsRedundant(r, in) {
			out = append(out, r)
		}
	}
	return out
}

// GroupByStatistics partitions rules into equivalence classes sharing the
// same s-support, i-support and confidence. The grouping is useful for
// reporting and for reasoning about redundancy.
func GroupByStatistics(in []Rule) map[string][]Rule {
	out := make(map[string][]Rule)
	for _, r := range in {
		key := statsKey(r)
		out[key] = append(out[key], r)
	}
	for _, group := range out {
		sort.Slice(group, func(i, j int) bool {
			if len(group[i].Pre)+len(group[i].Post) != len(group[j].Pre)+len(group[j].Post) {
				return len(group[i].Pre)+len(group[i].Post) < len(group[j].Pre)+len(group[j].Post)
			}
			return group[i].Key() < group[j].Key()
		})
	}
	return out
}

func statsKey(r Rule) string {
	return fmt.Sprintf("%d/%d/%.9f", r.SeqSupport, r.InstanceSupport, r.Confidence)
}

func floatEqual(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
