package rules

import (
	"errors"
	"sync"
	"time"

	"specmine/internal/mine"
	"specmine/internal/seqdb"
)

// Out-of-core rule mining. MineSource runs the same three-phase search as
// Mine, but pulls a per-seed database view from a mine.Source instead of
// walking one global index.
//
// Why per-seed views are exact here: a premise grown from seed e starts with
// e, so its projection, its backward-insertion windows (hasEquivalentInsertion
// reads only db.Sequences[pr.Seq] for supporting traces) and its whole
// consequent subtree (CountFrom/PositionsFrom/Extensions over supporting
// traces only) live entirely in traces containing e — exactly the traces a
// SeedView holds. The only view-local artefacts are the sequence ids inside
// projections; phase 1 remaps them to global ids before jobs leave the seed,
// which also makes the canonical premise signatures (and hence the global
// dedup of phase 2) identical to the in-memory run. Global ids map back to
// view-local ones in phase 3 via binary search; the ascending Global table
// preserves projection order in both directions, so every count, extension
// set and emitted rule is byte-identical to the in-memory miner's.
func MineSource(src mine.Source, opts Options, nonRedundant bool) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxRules > 0 {
		// The early-stop cutoff is defined by sequential emission order over
		// one global database; a per-seed run cannot honour it faithfully.
		return nil, errors.New("rules: MaxRules is not supported by out-of-core mining")
	}
	start := time.Now()
	minSeqSup := opts.absoluteSeqSupport(src.NumSequences())
	events := src.FrequentBySeqSupport(minSeqSup)
	workers := opts.effectiveWorkers()

	// Shell miner: carries opts and stats for the phase-2 dedup and the final
	// redundancy filter, both of which are pure over their inputs.
	shell := &ruleMiner{opts: opts, minSeqSup: minSeqSup, nr: nonRedundant}

	// Phase 1: premise enumeration, one seed's view at a time. The walker's
	// per-event scratch sizes by the shared dictionary space; db and extender
	// rebind per seed.
	type seedOut struct {
		jobs     []consequentJob
		explored int
		pruned   int
		err      error
	}
	numEvents := src.NumEvents()
	outs := mine.ForSeeds(len(events), workers, func() *premiseWalker {
		return &premiseWalker{
			opts:      opts,
			minSeqSup: minSeqSup,
			nr:        nonRedundant,
			path:      make(seqdb.Pattern, 0, 32),
			seen:      mine.NewStampSet(numEvents),
			cnt:       make([]int32, numEvents),
			cntStamp:  make([]uint32, numEvents),
		}
	}, func(wk *premiseWalker, i int) seedOut {
		sv, err := src.AcquireSeed(events[i])
		if err != nil {
			return seedOut{err: err}
		}
		defer sv.Release()
		wk.db = sv.DB
		wk.ext = mine.NewExtender(sv.DB.Sequences, sv.Idx)
		wk.jobs = nil
		wk.explored = 0
		wk.pruned = 0
		wk.walkSeed(events[i])
		// Remap every job's projection to global sequence ids and recompute
		// its signature over them. The fresh slices also free the jobs from
		// the per-seed extender arenas, so the view is collectable once
		// released.
		for j := range wk.jobs {
			gp := make([]mine.Proj, len(wk.jobs[j].proj))
			for k, pr := range wk.jobs[j].proj {
				gp[k] = mine.Proj{Seq: sv.Global[pr.Seq], Pos: pr.Pos}
			}
			wk.jobs[j].proj = gp
			wk.jobs[j].sig = premiseSignature(wk.jobs[j].pre.Last(), gp)
		}
		return seedOut{jobs: wk.jobs, explored: wk.explored, pruned: wk.pruned}
	})
	var jobs []consequentJob
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		jobs = append(jobs, outs[i].jobs...)
		shell.stats.PremisesExplored += outs[i].explored
		shell.stats.PremisesPrunedRedundant += outs[i].pruned
	}

	// Phase 2: canonical premise dedup over global projections — unchanged
	// from the in-memory run, since signatures and projections now carry
	// global ids.
	if nonRedundant {
		jobs = shell.dedupPremises(jobs)
	}

	// Phase 3: consequent mining. Jobs arrive seed-major (phase 1 merges in
	// seed order and dedup preserves order), so each worker caches the view of
	// the last seed it served and only re-acquires on a seed change.
	type jobOut struct {
		rules []Rule
		stats Stats
		err   error
	}
	var (
		liveMu sync.Mutex
		live   []*consequentWorker
	)
	jouts := mine.ForSeeds(len(jobs), workers, func() *consequentWorker {
		cw := &consequentWorker{src: src, opts: opts, nr: nonRedundant}
		liveMu.Lock()
		live = append(live, cw)
		liveMu.Unlock()
		return cw
	}, func(cw *consequentWorker, i int) jobOut {
		seed := jobs[i].pre[0]
		if err := cw.bind(seed); err != nil {
			return jobOut{err: err}
		}
		lp := make([]mine.Proj, len(jobs[i].proj))
		for k, pr := range jobs[i].proj {
			lp[k] = mine.Proj{Seq: cw.sv.LocalOf(pr.Seq), Pos: pr.Pos}
		}
		cw.w.rules = nil
		cw.w.mineConsequents(jobs[i].pre, lp)
		var out jobOut
		out.rules = cw.w.rules
		cw.w.drainStats(&out.stats)
		return out
	})
	// ForSeeds offers no per-worker teardown, so the workers' final views are
	// released here.
	for _, cw := range live {
		cw.release()
	}
	var firstErr error
	for i := range jouts {
		if jouts[i].err != nil && firstErr == nil {
			firstErr = jouts[i].err
		}
		shell.rules = append(shell.rules, jouts[i].rules...)
		shell.stats.ConsequentNodesExplored += jouts[i].stats.ConsequentNodesExplored
		shell.stats.RulesSuppressedRedundant += jouts[i].stats.RulesSuppressedRedundant
	}
	if firstErr != nil {
		return nil, firstErr
	}

	mined := shell.rules
	if nonRedundant {
		mined = shell.removeRedundant(mined)
	}
	res := &Result{
		Rules:      mined,
		Stats:      shell.stats,
		MinSeqSup:  minSeqSup,
		MinInstSup: opts.MinInstanceSupport,
		MinConf:    opts.MinConfidence,
	}
	res.Stats.RulesEmitted = len(res.Rules)
	res.Stats.Duration = time.Since(start)
	res.Sort()
	return res, nil
}

// consequentWorker is one phase-3 pool goroutine's state: the ruleWorker for
// the currently bound seed view. Rebinding releases the previous view.
type consequentWorker struct {
	src  mine.Source
	opts Options
	nr   bool

	seed  seqdb.EventID
	sv    *mine.SeedView
	w     *ruleWorker
	bound bool
}

// bind ensures the worker holds seed's view.
func (cw *consequentWorker) bind(seed seqdb.EventID) error {
	if cw.bound && cw.seed == seed {
		return nil
	}
	cw.release()
	sv, err := cw.src.AcquireSeed(seed)
	if err != nil {
		return err
	}
	cw.seed, cw.sv, cw.bound = seed, sv, true
	cw.w = &ruleWorker{
		idx:  sv.Idx,
		opts: cw.opts,
		nr:   cw.nr,
		ext:  mine.NewExtender(sv.DB.Sequences, sv.Idx),
	}
	return nil
}

func (cw *consequentWorker) release() {
	if cw.bound {
		cw.sv.Release()
		cw.sv, cw.w, cw.bound = nil, nil, false
	}
}
