package rules

import (
	"slices"
	"time"

	"specmine/internal/par"
	"specmine/internal/seqdb"
)

// MineFull mines every significant rule: all rules satisfying the s-support,
// i-support and confidence thresholds, with no redundancy removal (the "Full"
// series of Figures 2 and 3).
func MineFull(db *seqdb.Database, opts Options) (*Result, error) {
	return mineRules(db, opts, false)
}

// MineNonRedundant mines the non-redundant set of significant rules
// (Definition 5.2): premise subtrees whose temporal points coincide with a
// shorter premise are pruned early, consequents that can be extended without
// changing any statistic are not reported on their own, and a final filter
// removes any remaining redundancy (the "NR" series of Figures 2 and 3).
func MineNonRedundant(db *seqdb.Database, opts Options) (*Result, error) {
	return mineRules(db, opts, true)
}

// Mine dispatches on nonRedundant. It is a convenience for the facade and
// CLIs.
func Mine(db *seqdb.Database, opts Options, nonRedundant bool) (*Result, error) {
	return mineRules(db, opts, nonRedundant)
}

func mineRules(db *seqdb.Database, opts Options, nonRedundant bool) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := &ruleMiner{
		db:        db,
		idx:       db.FlatIndex(),
		opts:      opts,
		minSeqSup: opts.absoluteSeqSupport(db.NumSequences()),
		nr:        nonRedundant,
	}
	if nonRedundant {
		m.premiseLandmarks = make(map[uint64][]premiseLandmark)
	}
	m.run()
	mined := m.rules
	if nonRedundant {
		mined = m.removeRedundant(mined)
	}
	// Stats are copied only now: the final redundancy filter still increments
	// RulesSuppressedRedundant.
	res := &Result{
		Rules:      mined,
		Stats:      m.stats,
		MinSeqSup:  m.minSeqSup,
		MinInstSup: opts.MinInstanceSupport,
		MinConf:    opts.MinConfidence,
	}
	res.Stats.RulesEmitted = len(res.Rules)
	res.Stats.Duration = time.Since(start)
	res.Sort()
	return res, nil
}

// premiseProj records, for one sequence containing the current premise, the
// position of the premise's earliest completion (its first temporal point).
type premiseProj struct {
	seq      int32
	firstEnd int32
}

// tpRecord tracks one temporal point of the premise during consequent growth:
// cur is the position right after the earliest embedding of the current
// consequent within the suffix that follows the temporal point.
type tpRecord struct {
	seq int32
	tp  int32
	cur int32
}

// premiseLandmark remembers a premise and its temporal-point identity for the
// non-redundant miner's equivalence pruning. The projection slice is shared
// with the search node that produced it (projections are immutable once their
// arena is filled), so registering a landmark copies no projection entries.
type premiseLandmark struct {
	premise seqdb.Pattern
	last    seqdb.EventID
	proj    []premiseProj
}

// consequentJob is one unit of parallel work: a surviving premise whose
// consequent subtree is mined independently of every other premise.
type consequentJob struct {
	pre  seqdb.Pattern
	proj []premiseProj
}

type ruleMiner struct {
	db        *seqdb.Database
	idx       *seqdb.PositionIndex
	opts      Options
	minSeqSup int
	nr        bool

	rules            []Rule
	stats            Stats
	premiseLandmarks map[uint64][]premiseLandmark
	stop             bool

	// Premise-walk scratch (the premise tree is always walked sequentially:
	// its landmark pruning depends on cross-seed exploration order).
	scratch seqdb.EventSlots

	// Sequential mode mines consequents inline through seqWorker; parallel
	// mode collects jobs during the premise walk and fans them out afterwards.
	seqWorker *ruleWorker
	collect   bool
	jobs      []consequentJob
}

func (m *ruleMiner) run() {
	// Frequent single-event premises (Theorem 2 base case).
	events := m.idx.FrequentEventsBySeqSupport(m.minSeqSup)
	workers := m.opts.effectiveWorkers()
	m.scratch = seqdb.NewEventSlots(m.idx.NumEvents())
	m.collect = workers > 1
	if !m.collect {
		m.seqWorker = m.newWorker()
	}

	for _, e := range events {
		if m.stop {
			break
		}
		seqs := m.idx.SeqsContaining(e)
		proj := make([]premiseProj, 0, len(seqs))
		for _, si := range seqs {
			proj = append(proj, premiseProj{seq: si, firstEnd: m.idx.Positions(int(si), e)[0]})
		}
		m.growPremise(seqdb.Pattern{e}, proj)
	}

	if !m.collect {
		m.rules = m.seqWorker.rules
		m.seqWorker.drainStats(&m.stats)
		return
	}

	// Parallel consequent mining: jobs were collected in premise DFS order,
	// each is independent, and merging per-job outputs in that order makes the
	// emitted rule list byte-identical to a sequential run.
	type jobOut struct {
		rules []Rule
		stats Stats
	}
	outs := make([]jobOut, len(m.jobs))
	par.ForWorker(len(m.jobs), workers, m.newWorker, func(sub *ruleWorker, i int) {
		sub.rules = nil
		sub.mineConsequents(m.jobs[i].pre, m.jobs[i].proj)
		outs[i].rules = sub.rules
		sub.drainStats(&outs[i].stats)
	})
	for i := range outs {
		m.rules = append(m.rules, outs[i].rules...)
		m.stats.ConsequentNodesExplored += outs[i].stats.ConsequentNodesExplored
		m.stats.RulesSuppressedRedundant += outs[i].stats.RulesSuppressedRedundant
	}
}

// growPremise explores the premise search tree (step 1 of Section 5).
func (m *ruleMiner) growPremise(pre seqdb.Pattern, proj []premiseProj) {
	if m.stop {
		return
	}
	m.stats.PremisesExplored++

	if m.nr && m.premiseIsRedundant(pre, proj) {
		m.stats.PremisesPrunedRedundant++
		return
	}

	// Steps 2–4: find temporal points and mine consequents for this premise,
	// inline when sequential, deferred to the worker pool when parallel.
	if m.collect {
		m.jobs = append(m.jobs, consequentJob{pre: pre, proj: proj})
	} else {
		m.seqWorker.mineConsequents(pre, proj)
		if m.seqWorker.stopped {
			m.stop = true
			return
		}
	}

	if m.opts.MaxPremiseLength > 0 && len(pre) >= m.opts.MaxPremiseLength {
		return
	}

	// Candidate premise extensions: events occurring after the first temporal
	// point in at least minSeqSup sequences (Theorem 2, apriori on s-support).
	// An event extends the projection at its first occurrence within each
	// suffix, which the index's prev-occurrence chain detects in O(1): s[j] is
	// the first occurrence after firstEnd exactly when its previous occurrence
	// precedes firstEnd+1.
	sc := &m.scratch
	sc.Begin()
	for _, pr := range proj {
		s := m.db.Sequences[pr.seq]
		for j := int(pr.firstEnd) + 1; j < len(s); j++ {
			if m.idx.OccursWithin(int(pr.seq), j, int(pr.firstEnd)+1) {
				continue
			}
			sc.Add(s[j])
		}
	}
	if sc.Len() == 0 {
		return
	}

	// Only extensions meeting the s-support threshold (Theorem 2) are
	// materialised: the arena slices outlive the node inside landmark
	// entries, so infrequent projections would be pinned for nothing.
	type ext struct {
		event seqdb.EventID
		count int32
		proj  []premiseProj
	}
	exts := make([]ext, sc.Len())
	total := 0
	for slot := range exts {
		c := sc.Count(slot)
		exts[slot] = ext{event: sc.Event(slot), count: c}
		if int(c) >= m.minSeqSup {
			total += int(c)
		}
	}
	arena := make([]premiseProj, total)
	off := 0
	for slot := range exts {
		if c := int(exts[slot].count); c >= m.minSeqSup {
			exts[slot].proj = arena[off : off : off+c]
			off += c
		}
	}
	for _, pr := range proj {
		s := m.db.Sequences[pr.seq]
		for j := int(pr.firstEnd) + 1; j < len(s); j++ {
			if m.idx.OccursWithin(int(pr.seq), j, int(pr.firstEnd)+1) {
				continue
			}
			x := &exts[sc.Slot(s[j])]
			if x.proj != nil {
				x.proj = append(x.proj, premiseProj{seq: pr.seq, firstEnd: int32(j)})
			}
		}
	}
	slices.SortFunc(exts, func(a, b ext) int { return int(a.event) - int(b.event) })

	for i := range exts {
		if m.stop {
			return
		}
		if int(exts[i].count) < m.minSeqSup {
			continue
		}
		m.growPremise(pre.Append(exts[i].event), exts[i].proj)
	}
}

// premiseIsRedundant consults and updates the landmark table of the
// non-redundant miner. Two premises with the same last event and the same
// first temporal point in every sequence have identical temporal-point sets,
// so for any consequent the two resulting rules carry identical statistics.
// Definition 5.2 keeps the rule with the longer (super-sequence)
// concatenation, so when an already-explored premise is a super-sequence of
// the current one, every rule the current premise (or any of its extensions)
// could produce is redundant with respect to a rule grown from that longer
// premise's subtree: the current subtree is skipped. When the current premise
// is instead the longer one, it becomes the new landmark and the shorter
// premise's already-emitted rules are cleaned up by the final redundancy
// filter.
func (m *ruleMiner) premiseIsRedundant(pre seqdb.Pattern, proj []premiseProj) bool {
	last := pre.Last()
	sig := premiseSignature(last, proj)
	entries := m.premiseLandmarks[sig]
	for i, lm := range entries {
		if lm.last != last || !sameProj(lm.proj, proj) {
			continue
		}
		if pre.IsSubsequenceOf(lm.premise) && len(pre) < len(lm.premise) {
			return true
		}
		if lm.premise.IsSubsequenceOf(pre) {
			entries[i] = premiseLandmark{premise: pre.Clone(), last: last, proj: lm.proj}
			m.premiseLandmarks[sig] = entries
			return false
		}
	}
	m.premiseLandmarks[sig] = append(entries, premiseLandmark{
		premise: pre.Clone(), last: last, proj: proj,
	})
	return false
}

// premiseSignature hashes the premise identity with stack-allocated FNV-1a
// (this runs once per premise search node).
func premiseSignature(last seqdb.EventID, proj []premiseProj) uint64 {
	h := seqdb.NewHash64().Mix16(int32(last))
	for _, pr := range proj {
		h = h.Mix32(pr.seq).Mix32(pr.firstEnd)
	}
	return uint64(h)
}

func sameProj(a, b []premiseProj) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ruleWorker mines consequent subtrees. One worker serves the whole run in
// sequential mode; parallel mode gives each pool goroutine its own worker so
// the scratch buffers are never shared.
type ruleWorker struct {
	db        *seqdb.Database
	idx       *seqdb.PositionIndex
	opts      Options
	nr        bool
	scratch   seqdb.EventSlots
	rules     []Rule
	stopped   bool // MaxRules reached (sequential mode only)
	nodes     int
	redundant int
}

func (m *ruleMiner) newWorker() *ruleWorker {
	return &ruleWorker{
		db:      m.db,
		idx:     m.idx,
		opts:    m.opts,
		nr:      m.nr,
		scratch: seqdb.NewEventSlots(m.idx.NumEvents()),
	}
}

// drainStats moves the worker's counters into stats.
func (w *ruleWorker) drainStats(stats *Stats) {
	stats.ConsequentNodesExplored += w.nodes
	stats.RulesSuppressedRedundant += w.redundant
	w.nodes = 0
	w.redundant = 0
}

// mineConsequents performs steps 2–4 for one premise: it projects the
// database at the premise's temporal points and grows consequents with
// confidence-based pruning (Theorem 3).
func (w *ruleWorker) mineConsequents(pre seqdb.Pattern, proj []premiseProj) {
	if w.stopped {
		return
	}
	seqSup := len(proj)
	last := pre.Last()
	total := 0
	for _, pr := range proj {
		total += w.idx.CountFrom(int(pr.seq), last, int(pr.firstEnd))
	}
	if total == 0 {
		return
	}
	records := make([]tpRecord, 0, total)
	for _, pr := range proj {
		for _, t := range w.idx.PositionsFrom(int(pr.seq), last, int(pr.firstEnd)) {
			records = append(records, tpRecord{seq: pr.seq, tp: t, cur: t + 1})
		}
	}
	w.growConsequent(pre, seqSup, len(records), nil, records)
}

// growConsequent explores the consequent search tree for a fixed premise.
// records holds the temporal points at which the current consequent is still
// satisfied, together with the position reached by its earliest embedding.
type consequentExt struct {
	event   seqdb.EventID
	count   int32
	records []tpRecord
}

func (w *ruleWorker) growConsequent(pre seqdb.Pattern, seqSup, totalTP int, post seqdb.Pattern, records []tpRecord) {
	if w.stopped {
		return
	}
	w.nodes++

	// The confidence floor on surviving temporal points (Theorem 3) is fixed
	// for the whole premise, so it also decides which candidate extensions
	// are worth materialising below.
	minSatisfied := int(w.opts.MinConfidence*float64(totalTP) - 1e-9)
	if float64(minSatisfied) < w.opts.MinConfidence*float64(totalTP)-1e-9 {
		minSatisfied++
	}
	if minSatisfied < 1 {
		minSatisfied = 1
	}

	// Candidate consequent extensions with their surviving records: an event
	// survives a record at its first occurrence in the record's suffix, which
	// is again a single prev-occurrence read per position. Extensions below
	// the confidence floor keep only their count: they are never recursed
	// into, and the redundancy check below can only match extensions whose
	// count equals len(records) >= minSatisfied.
	sc := &w.scratch
	sc.Begin()
	for _, r := range records {
		s := w.db.Sequences[r.seq]
		for j := int(r.cur); j < len(s); j++ {
			if w.idx.OccursWithin(int(r.seq), j, int(r.cur)) {
				continue
			}
			sc.Add(s[j])
		}
	}
	var exts []consequentExt
	if sc.Len() > 0 {
		exts = make([]consequentExt, sc.Len())
		total := 0
		for slot := range exts {
			c := sc.Count(slot)
			exts[slot] = consequentExt{event: sc.Event(slot), count: c}
			if int(c) >= minSatisfied {
				total += int(c)
			}
		}
		arena := make([]tpRecord, total)
		off := 0
		for slot := range exts {
			if c := int(exts[slot].count); c >= minSatisfied {
				exts[slot].records = arena[off : off : off+c]
				off += c
			}
		}
		for _, r := range records {
			s := w.db.Sequences[r.seq]
			for j := int(r.cur); j < len(s); j++ {
				if w.idx.OccursWithin(int(r.seq), j, int(r.cur)) {
					continue
				}
				x := &exts[sc.Slot(s[j])]
				if x.records != nil {
					x.records = append(x.records, tpRecord{seq: r.seq, tp: r.tp, cur: int32(j) + 1})
				}
			}
		}
		slices.SortFunc(exts, func(a, b consequentExt) int { return int(a.event) - int(b.event) })
	}

	if len(post) > 0 {
		conf := float64(len(records)) / float64(totalTP)
		iSup := w.instanceSupport(post, records)
		emit := iSup >= w.opts.MinInstanceSupport && conf+1e-12 >= w.opts.MinConfidence
		if emit && w.nr && (w.opts.MaxConsequentLength == 0 || len(post) < w.opts.MaxConsequentLength) {
			// A consequent extension that keeps every statistic identical
			// makes this rule redundant (Definition 5.2 keeps the longer
			// consequent), so it is not reported on its own. Such an
			// extension has count == len(records) >= minSatisfied, so it is
			// always materialised.
			for i := range exts {
				if int(exts[i].count) == len(records) && w.instanceSupportFor(exts[i].event, exts[i].records) == iSup {
					emit = false
					w.redundant++
					break
				}
			}
		}
		if emit {
			w.rules = append(w.rules, Rule{
				Pre:             pre.Clone(),
				Post:            post.Clone(),
				SeqSupport:      seqSup,
				InstanceSupport: iSup,
				Confidence:      conf,
			})
			if w.opts.MaxRules > 0 && len(w.rules) >= w.opts.MaxRules {
				w.stopped = true
				return
			}
		}
	}

	if w.opts.MaxConsequentLength > 0 && len(post) >= w.opts.MaxConsequentLength {
		return
	}

	for i := range exts {
		if w.stopped {
			return
		}
		// Theorem 3: extending the consequent can only lose satisfied temporal
		// points, so subtrees below the confidence threshold are pruned.
		if int(exts[i].count) < minSatisfied {
			continue
		}
		w.growConsequent(pre, seqSup, totalTP, post.Append(exts[i].event), exts[i].records)
	}
}

// instanceSupport computes the i-support of pre -> post from the surviving
// temporal-point records: the number of occurrences of last(post) at or after
// the earliest completion of pre ++ post in each sequence.
func (w *ruleWorker) instanceSupport(post seqdb.Pattern, records []tpRecord) int {
	return w.instanceSupportFor(post.Last(), records)
}

// instanceSupportFor is instanceSupport with the last consequent event given
// explicitly, so it can also score candidate extensions cheaply.
func (w *ruleWorker) instanceSupportFor(last seqdb.EventID, records []tpRecord) int {
	iSup := 0
	seenSeq := int32(-1)
	for _, r := range records {
		if r.seq == seenSeq {
			continue // only the earliest temporal point per sequence matters
		}
		seenSeq = r.seq
		iSup += w.idx.CountFrom(int(r.seq), last, int(r.cur)-1)
	}
	return iSup
}
