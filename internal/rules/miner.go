package rules

import (
	"hash/fnv"
	"sort"
	"time"

	"specmine/internal/seqdb"
)

// MineFull mines every significant rule: all rules satisfying the s-support,
// i-support and confidence thresholds, with no redundancy removal (the "Full"
// series of Figures 2 and 3).
func MineFull(db *seqdb.Database, opts Options) (*Result, error) {
	return mineRules(db, opts, false)
}

// MineNonRedundant mines the non-redundant set of significant rules
// (Definition 5.2): premise subtrees whose temporal points coincide with a
// shorter premise are pruned early, consequents that can be extended without
// changing any statistic are not reported on their own, and a final filter
// removes any remaining redundancy (the "NR" series of Figures 2 and 3).
func MineNonRedundant(db *seqdb.Database, opts Options) (*Result, error) {
	return mineRules(db, opts, true)
}

// Mine dispatches on nonRedundant. It is a convenience for the facade and
// CLIs.
func Mine(db *seqdb.Database, opts Options, nonRedundant bool) (*Result, error) {
	return mineRules(db, opts, nonRedundant)
}

func mineRules(db *seqdb.Database, opts Options, nonRedundant bool) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := &ruleMiner{
		db:        db,
		pos:       db.Index(),
		opts:      opts,
		minSeqSup: opts.absoluteSeqSupport(db.NumSequences()),
		nr:        nonRedundant,
	}
	if nonRedundant {
		m.premiseLandmarks = make(map[uint64][]premiseLandmark)
	}
	m.run()
	res := &Result{
		Rules:      m.rules,
		Stats:      m.stats,
		MinSeqSup:  m.minSeqSup,
		MinInstSup: opts.MinInstanceSupport,
		MinConf:    opts.MinConfidence,
	}
	if nonRedundant {
		res.Rules = m.removeRedundant(res.Rules)
	}
	res.Stats.RulesEmitted = len(res.Rules)
	res.Stats.Duration = time.Since(start)
	res.Sort()
	return res, nil
}

// premiseProj records, for one sequence containing the current premise, the
// position of the premise's earliest completion (its first temporal point).
type premiseProj struct {
	seq      int32
	firstEnd int32
}

// tpRecord tracks one temporal point of the premise during consequent growth:
// cur is the position right after the earliest embedding of the current
// consequent within the suffix that follows the temporal point.
type tpRecord struct {
	seq int32
	tp  int32
	cur int32
}

// premiseLandmark remembers a premise and its temporal-point identity for the
// non-redundant miner's equivalence pruning.
type premiseLandmark struct {
	premise seqdb.Pattern
	last    seqdb.EventID
	proj    []premiseProj
}

type ruleMiner struct {
	db        *seqdb.Database
	pos       []map[seqdb.EventID][]int
	opts      Options
	minSeqSup int
	nr        bool

	rules            []Rule
	stats            Stats
	premiseLandmarks map[uint64][]premiseLandmark
	stop             bool
}

func (m *ruleMiner) run() {
	// Frequent single-event premises (Theorem 2 base case).
	sup := m.db.EventSupport()
	events := make([]seqdb.EventID, 0, len(sup))
	for e, c := range sup {
		if c >= m.minSeqSup {
			events = append(events, e)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	for _, e := range events {
		if m.stop {
			return
		}
		var proj []premiseProj
		for si := range m.db.Sequences {
			if ps := m.pos[si][e]; len(ps) > 0 {
				proj = append(proj, premiseProj{seq: int32(si), firstEnd: int32(ps[0])})
			}
		}
		m.growPremise(seqdb.Pattern{e}, proj)
	}
}

// growPremise explores the premise search tree (step 1 of Section 5).
func (m *ruleMiner) growPremise(pre seqdb.Pattern, proj []premiseProj) {
	if m.stop {
		return
	}
	m.stats.PremisesExplored++

	if m.nr && m.premiseIsRedundant(pre, proj) {
		m.stats.PremisesPrunedRedundant++
		return
	}

	// Steps 2–4: find temporal points and mine consequents for this premise.
	m.mineConsequents(pre, proj)

	if m.opts.MaxPremiseLength > 0 && len(pre) >= m.opts.MaxPremiseLength {
		return
	}

	// Candidate premise extensions: events occurring after the first temporal
	// point in at least minSeqSup sequences (Theorem 2, apriori on s-support).
	type ext struct{ proj []premiseProj }
	counts := make(map[seqdb.EventID]*ext)
	for _, pr := range proj {
		s := m.db.Sequences[pr.seq]
		seen := make(map[seqdb.EventID]bool)
		for j := int(pr.firstEnd) + 1; j < len(s); j++ {
			ev := s[j]
			if seen[ev] {
				continue
			}
			seen[ev] = true
			o := counts[ev]
			if o == nil {
				o = &ext{}
				counts[ev] = o
			}
			o.proj = append(o.proj, premiseProj{seq: pr.seq, firstEnd: int32(j)})
		}
	}
	events := make([]seqdb.EventID, 0, len(counts))
	for ev, o := range counts {
		if len(o.proj) >= m.minSeqSup {
			events = append(events, ev)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	for _, ev := range events {
		if m.stop {
			return
		}
		m.growPremise(pre.Append(ev), counts[ev].proj)
	}
}

// premiseIsRedundant consults and updates the landmark table of the
// non-redundant miner. Two premises with the same last event and the same
// first temporal point in every sequence have identical temporal-point sets,
// so for any consequent the two resulting rules carry identical statistics.
// Definition 5.2 keeps the rule with the longer (super-sequence)
// concatenation, so when an already-explored premise is a super-sequence of
// the current one, every rule the current premise (or any of its extensions)
// could produce is redundant with respect to a rule grown from that longer
// premise's subtree: the current subtree is skipped. When the current premise
// is instead the longer one, it becomes the new landmark and the shorter
// premise's already-emitted rules are cleaned up by the final redundancy
// filter.
func (m *ruleMiner) premiseIsRedundant(pre seqdb.Pattern, proj []premiseProj) bool {
	last := pre.Last()
	sig := premiseSignature(last, proj)
	entries := m.premiseLandmarks[sig]
	for i, lm := range entries {
		if lm.last != last || !sameProj(lm.proj, proj) {
			continue
		}
		if pre.IsSubsequenceOf(lm.premise) && len(pre) < len(lm.premise) {
			return true
		}
		if lm.premise.IsSubsequenceOf(pre) {
			entries[i] = premiseLandmark{premise: pre.Clone(), last: last, proj: lm.proj}
			m.premiseLandmarks[sig] = entries
			return false
		}
	}
	m.premiseLandmarks[sig] = append(entries, premiseLandmark{
		premise: pre.Clone(), last: last, proj: append([]premiseProj(nil), proj...),
	})
	return false
}

func premiseSignature(last seqdb.EventID, proj []premiseProj) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	buf[0] = byte(last)
	buf[1] = byte(last >> 8)
	h.Write(buf[:2])
	for _, pr := range proj {
		buf[0] = byte(pr.seq)
		buf[1] = byte(pr.seq >> 8)
		buf[2] = byte(pr.seq >> 16)
		buf[3] = byte(pr.seq >> 24)
		buf[4] = byte(pr.firstEnd)
		buf[5] = byte(pr.firstEnd >> 8)
		buf[6] = byte(pr.firstEnd >> 16)
		buf[7] = byte(pr.firstEnd >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

func sameProj(a, b []premiseProj) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mineConsequents performs steps 2–4 for one premise: it projects the
// database at the premise's temporal points and grows consequents with
// confidence-based pruning (Theorem 3).
func (m *ruleMiner) mineConsequents(pre seqdb.Pattern, proj []premiseProj) {
	seqSup := len(proj)
	last := pre.Last()
	var records []tpRecord
	for _, pr := range proj {
		for _, t := range m.pos[pr.seq][last] {
			if int32(t) < pr.firstEnd {
				continue
			}
			records = append(records, tpRecord{seq: pr.seq, tp: int32(t), cur: int32(t) + 1})
		}
	}
	totalTP := len(records)
	if totalTP == 0 {
		return
	}
	m.growConsequent(pre, seqSup, totalTP, nil, records)
}

// growConsequent explores the consequent search tree for a fixed premise.
// records holds the temporal points at which the current consequent is still
// satisfied, together with the position reached by its earliest embedding.
func (m *ruleMiner) growConsequent(pre seqdb.Pattern, seqSup, totalTP int, post seqdb.Pattern, records []tpRecord) {
	if m.stop {
		return
	}
	m.stats.ConsequentNodesExplored++

	// Candidate consequent extensions with their surviving records.
	counts := make(map[seqdb.EventID][]tpRecord)
	for _, r := range records {
		s := m.db.Sequences[r.seq]
		seen := make(map[seqdb.EventID]bool)
		for j := int(r.cur); j < len(s); j++ {
			ev := s[j]
			if seen[ev] {
				continue
			}
			seen[ev] = true
			counts[ev] = append(counts[ev], tpRecord{seq: r.seq, tp: r.tp, cur: int32(j) + 1})
		}
	}

	minSatisfied := int(m.opts.MinConfidence*float64(totalTP) - 1e-9)
	if float64(minSatisfied) < m.opts.MinConfidence*float64(totalTP)-1e-9 {
		minSatisfied++
	}
	if minSatisfied < 1 {
		minSatisfied = 1
	}

	if len(post) > 0 {
		conf := float64(len(records)) / float64(totalTP)
		iSup := m.instanceSupport(post, records)
		emit := iSup >= m.opts.MinInstanceSupport && conf+1e-12 >= m.opts.MinConfidence
		if emit && m.nr && (m.opts.MaxConsequentLength == 0 || len(post) < m.opts.MaxConsequentLength) {
			// A consequent extension that keeps every statistic identical
			// makes this rule redundant (Definition 5.2 keeps the longer
			// consequent), so it is not reported on its own.
			for ev, extRecords := range counts {
				if len(extRecords) == len(records) && m.instanceSupportFor(ev, extRecords) == iSup {
					emit = false
					m.stats.RulesSuppressedRedundant++
					break
				}
			}
		}
		if emit {
			m.rules = append(m.rules, Rule{
				Pre:             pre.Clone(),
				Post:            post.Clone(),
				SeqSupport:      seqSup,
				InstanceSupport: iSup,
				Confidence:      conf,
			})
			if m.opts.MaxRules > 0 && len(m.rules) >= m.opts.MaxRules {
				m.stop = true
				return
			}
		}
	}

	if m.opts.MaxConsequentLength > 0 && len(post) >= m.opts.MaxConsequentLength {
		return
	}

	events := make([]seqdb.EventID, 0, len(counts))
	for ev, extRecords := range counts {
		// Theorem 3: extending the consequent can only lose satisfied temporal
		// points, so subtrees below the confidence threshold are pruned.
		if len(extRecords) >= minSatisfied {
			events = append(events, ev)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	for _, ev := range events {
		if m.stop {
			return
		}
		m.growConsequent(pre, seqSup, totalTP, post.Append(ev), counts[ev])
	}
}

// instanceSupport computes the i-support of pre -> post from the surviving
// temporal-point records: the number of occurrences of last(post) at or after
// the earliest completion of pre ++ post in each sequence.
func (m *ruleMiner) instanceSupport(post seqdb.Pattern, records []tpRecord) int {
	return m.instanceSupportFor(post.Last(), records)
}

// instanceSupportFor is instanceSupport with the last consequent event given
// explicitly, so it can also score candidate extensions cheaply.
func (m *ruleMiner) instanceSupportFor(last seqdb.EventID, records []tpRecord) int {
	iSup := 0
	seenSeq := int32(-1)
	for _, r := range records {
		if r.seq == seenSeq {
			continue // only the earliest temporal point per sequence matters
		}
		seenSeq = r.seq
		completion := int(r.cur) - 1
		iSup += seqdb.CountInRange(m.pos[r.seq][last], completion, len(m.db.Sequences[r.seq]))
	}
	return iSup
}
