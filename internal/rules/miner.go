package rules

import (
	"time"

	"specmine/internal/mine"
	"specmine/internal/seqdb"
)

// MineFull mines every significant rule: all rules satisfying the s-support,
// i-support and confidence thresholds, with no redundancy removal (the "Full"
// series of Figures 2 and 3).
func MineFull(db *seqdb.Database, opts Options) (*Result, error) {
	return mineRules(db, opts, false)
}

// MineNonRedundant mines the non-redundant set of significant rules
// (Definition 5.2): premises whose temporal points coincide with those of a
// longer premise are dropped by a canonical dedup before any consequent is
// mined, consequents that can be extended without changing any statistic are
// not reported on their own, and a final filter removes any remaining
// redundancy (the "NR" series of Figures 2 and 3).
func MineNonRedundant(db *seqdb.Database, opts Options) (*Result, error) {
	return mineRules(db, opts, true)
}

// Mine dispatches on nonRedundant. It is a convenience for the facade and
// CLIs.
func Mine(db *seqdb.Database, opts Options, nonRedundant bool) (*Result, error) {
	return mineRules(db, opts, nonRedundant)
}

func mineRules(db *seqdb.Database, opts Options, nonRedundant bool) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := &ruleMiner{
		db:        db,
		idx:       db.FlatIndex(),
		opts:      opts,
		minSeqSup: opts.absoluteSeqSupport(db.NumSequences()),
		nr:        nonRedundant,
	}
	m.run()
	mined := m.rules
	if nonRedundant {
		mined = m.removeRedundant(mined)
	}
	// Stats are copied only now: the final redundancy filter still increments
	// RulesSuppressedRedundant.
	res := &Result{
		Rules:      mined,
		Stats:      m.stats,
		MinSeqSup:  m.minSeqSup,
		MinInstSup: opts.MinInstanceSupport,
		MinConf:    opts.MinConfidence,
	}
	res.Stats.RulesEmitted = len(res.Rules)
	res.Stats.Duration = time.Since(start)
	res.Sort()
	return res, nil
}

// The miner's pseudo-projections are the framework's mine.Proj entries:
//
//   - a premise projection holds, per sequence containing the premise, the
//     position of the premise's earliest completion (its first temporal
//     point);
//   - a consequent record holds the position reached by the earliest
//     embedding of the current consequent after one temporal point, with the
//     temporal point itself riding along as the entry's tag.

// consequentJob is one unit of parallel work: an enumerated premise whose
// consequent subtree is mined independently of every other premise. sig is
// the canonical signature of the premise's temporal-point identity (last
// event plus first temporal point per sequence), which drives the
// non-redundant miner's dedup.
type consequentJob struct {
	pre  seqdb.Pattern
	proj []mine.Proj
	sig  uint64
}

type ruleMiner struct {
	db        *seqdb.Database
	idx       *seqdb.PositionIndex
	opts      Options
	minSeqSup int
	nr        bool

	rules []Rule
	stats Stats
}

// run executes the three mining phases. Phase 1 enumerates every s-frequent
// premise with its projection; seeds root independent subtrees and no state
// crosses them, so the premise tree fans out across Options.Workers (the
// order-dependent landmark pruning this replaces forced a sequential walk).
// Phase 2 (non-redundant mode) drops premises whose temporal points coincide
// with a longer premise's via canonical signature-based dedup — an
// order-free decision, unlike the landmark walk, so it is unaffected by the
// parallel enumeration. Phase 3 mines one consequent subtree per surviving
// premise, also across the worker pool. Both fan-outs merge their outputs in
// seed / job order (mine.ForSeeds), which makes the result byte-identical
// for any worker count.
func (m *ruleMiner) run() {
	// Frequent single-event premises (Theorem 2 base case).
	events := m.idx.FrequentEventsBySeqSupport(m.minSeqSup)
	workers := m.opts.effectiveWorkers()

	// Phase 1: premise enumeration.
	type seedOut struct {
		jobs     []consequentJob
		explored int
		pruned   int
	}
	// Heaviest seeds first: a seed's subtree cost tracks its event's total
	// occurrence count, and dispatching the expensive subtrees early keeps the
	// pool's tail short. The schedule changes execution order only — outputs
	// merge in seed order either way.
	seedOrder := mine.ScheduleByWeight(len(events), func(i int) int64 {
		return int64(m.idx.EventInstanceCount(events[i]))
	})
	outs := mine.ForSeedsScheduled(len(events), workers, seedOrder, m.newPremiseWalker, func(wk *premiseWalker, i int) seedOut {
		wk.jobs = nil
		wk.explored = 0
		wk.pruned = 0
		wk.walkSeed(events[i])
		return seedOut{jobs: wk.jobs, explored: wk.explored, pruned: wk.pruned}
	})
	var jobs []consequentJob
	for i := range outs {
		jobs = append(jobs, outs[i].jobs...)
		m.stats.PremisesExplored += outs[i].explored
		m.stats.PremisesPrunedRedundant += outs[i].pruned
	}

	// Phase 2: canonical premise dedup (Definition 5.2 applied at the
	// premise level; see dedupPremises).
	if m.nr {
		jobs = m.dedupPremises(jobs)
	}

	// Phase 3: consequent mining.
	if workers <= 1 {
		w := m.newWorker()
		for i := range jobs {
			w.mineConsequents(jobs[i].pre, jobs[i].proj)
			if w.stopped {
				break
			}
		}
		m.rules = w.rules
		w.drainStats(&m.stats)
		return
	}
	type jobOut struct {
		rules []Rule
		stats Stats
	}
	// Same longest-first trick for consequent subtrees: a job's cost tracks
	// its premise's supporting-sequence count.
	jobOrder := mine.ScheduleByWeight(len(jobs), func(i int) int64 {
		return int64(len(jobs[i].proj))
	})
	jouts := mine.ForSeedsScheduled(len(jobs), workers, jobOrder, m.newWorker, func(sub *ruleWorker, i int) jobOut {
		sub.rules = nil
		sub.mineConsequents(jobs[i].pre, jobs[i].proj)
		var out jobOut
		out.rules = sub.rules
		sub.drainStats(&out.stats)
		return out
	})
	for i := range jouts {
		m.rules = append(m.rules, jouts[i].rules...)
		m.stats.ConsequentNodesExplored += jouts[i].stats.ConsequentNodesExplored
		m.stats.RulesSuppressedRedundant += jouts[i].stats.RulesSuppressedRedundant
	}
}

// dedupPremises drops every premise that has an equivalent proper
// super-sequence among the enumerated premises. Two premises are equivalent
// when they share the last event and the first temporal point in every
// sequence: their full temporal-point sets then coincide, so for any
// consequent the two resulting rules carry identical statistics, and
// Definition 5.2 keeps the one with the longer (super-sequence)
// concatenation. The decision depends only on the premise set — not on any
// exploration order — so it commutes with the parallel walk; rules the
// dropped premises would have produced are covered by the kept equivalent
// super-sequences (redundancy chains terminate at a maximal premise, which
// is never dropped), and the exact removeRedundant filter still runs last.
func (m *ruleMiner) dedupPremises(jobs []consequentJob) []consequentJob {
	groups := make(map[uint64][]int32, len(jobs))
	for i := range jobs {
		groups[jobs[i].sig] = append(groups[jobs[i].sig], int32(i))
	}
	// Decide every drop against the pristine job list before compacting:
	// the group lists address jobs by index, so compacting in place while
	// still deciding would compare against overwritten slots.
	drop := make([]bool, len(jobs))
	for i := range jobs {
		last := jobs[i].pre.Last()
		for _, k := range groups[jobs[i].sig] {
			if int(k) == i {
				continue
			}
			other := &jobs[k]
			if len(other.pre) <= len(jobs[i].pre) || other.pre.Last() != last || !sameProj(other.proj, jobs[i].proj) {
				continue
			}
			if jobs[i].pre.IsSubsequenceOf(other.pre) {
				drop[i] = true
				break
			}
		}
	}
	kept := jobs[:0]
	for i := range jobs {
		if drop[i] {
			m.stats.PremisesPrunedRedundant++
			continue
		}
		kept = append(kept, jobs[i])
	}
	return kept
}

// premiseWalker enumerates the premise search tree below one seed event
// (step 1 of Section 5). One walker serves the whole run in sequential mode;
// parallel mode gives each pool goroutine its own walker so the scratch
// buffers are never shared. Extension passes run on the shared framework's
// count-first Extender; because every enumerated premise's projection is
// retained inside its consequent job, the walker never releases extension
// sets back to the arenas.
type premiseWalker struct {
	db        *seqdb.Database
	opts      Options
	minSeqSup int
	nr        bool

	ext      *mine.Extender
	path     seqdb.Pattern
	jobs     []consequentJob
	explored int
	pruned   int

	// Backscan scratch (see hasEquivalentInsertion).
	seen     mine.StampSet
	cnt      []int32
	cntStamp []uint32
	cntEpoch uint32
	abTab    []int32
}

func (m *ruleMiner) newPremiseWalker() *premiseWalker {
	n := m.idx.NumEvents()
	return &premiseWalker{
		db:        m.db,
		opts:      m.opts,
		minSeqSup: m.minSeqSup,
		nr:        m.nr,
		ext:       mine.NewExtender(m.db.Sequences, m.idx),
		path:      make(seqdb.Pattern, 0, 32),
		seen:      mine.NewStampSet(n),
		cnt:       make([]int32, n),
		cntStamp:  make([]uint32, n),
	}
}

func (wk *premiseWalker) walkSeed(e seqdb.EventID) {
	wk.path = append(wk.path[:0], e)
	wk.growPremise(wk.path, wk.ext.SeedProj(e))
}

// growPremise records the node as a consequent job and recurses into its
// s-frequent extensions. In non-redundant mode, premises dominated by an
// equivalent single-insertion super-sequence are skipped subtree and all:
// the dominating premise's subtree produces rules with identical statistics
// and longer concatenations for everything this subtree could emit.
//
// Candidate premise extensions are events occurring after the first temporal
// point in at least minSeqSup sequences (Theorem 2, apriori on s-support);
// the framework's count-first pass counts each event at its first occurrence
// per suffix and materialises only supra-threshold extension projections —
// infrequent projections would otherwise be pinned inside jobs for nothing.
func (wk *premiseWalker) growPremise(pre seqdb.Pattern, proj []mine.Proj) {
	wk.explored++
	if wk.nr && wk.hasEquivalentInsertion(pre, proj) {
		wk.pruned++
		return
	}
	wk.jobs = append(wk.jobs, consequentJob{
		pre:  pre.Clone(),
		proj: proj,
		sig:  premiseSignature(pre.Last(), proj),
	})

	if wk.opts.MaxPremiseLength > 0 && len(pre) >= wk.opts.MaxPremiseLength {
		return
	}

	es := wk.ext.Extensions(proj, nil, int32(wk.minSeqSup))
	for i := range es.Exts {
		if int(es.Exts[i].Count) < wk.minSeqSup {
			continue
		}
		wk.growPremise(append(pre, es.Exts[i].Event), es.Exts[i].Proj)
	}
}

// hasEquivalentInsertion is the canonical (order-free) counterpart of
// landmark-based premise pruning: it reports whether some single event can be
// inserted into pre's prefix to give a longer premise with the *same*
// temporal-point identity — same last event, same first temporal point in
// every supporting sequence, hence the same supporting sequences. When such
// an insertion exists (and stays within MaxPremiseLength, so the dominating
// premise is itself enumerated), every rule minable from pre or any of its
// extensions is redundant per Definition 5.2 against the dominating
// premise's subtree, so pre's subtree is skipped. Chains of insertions
// terminate at a maximal premise, which this test never skips.
//
// The test is exact, in the BIDE backward-extension style: an event e can be
// inserted at slot i of the prefix P' = pre[:len-1] while preserving the
// first temporal point fe of a sequence s iff e occurs strictly between the
// end of the greedy (earliest) embedding of P'[:i] and the start of the
// latest embedding of P'[i:] within s[0..fe-1]. The skip fires iff for some
// slot one event lies in that window in every supporting sequence.
func (wk *premiseWalker) hasEquivalentInsertion(pre seqdb.Pattern, proj []mine.Proj) bool {
	if wk.opts.MaxPremiseLength > 0 && len(pre)+1 > wk.opts.MaxPremiseLength {
		return false
	}
	m := len(pre) - 1
	prefix := pre[:m]

	// Per sequence: a[i] = end position of the greedy embedding of P'[:i]
	// (-1 for the empty prefix), b[i] = start position of the latest
	// embedding of P'[i:] within s[0..fe-1] (fe for the empty suffix). Both
	// embeddings exist because fe is pre's first temporal point, so the
	// prefix embeds within s[0..fe-1].
	width := m + 1
	need := 2 * width * len(proj)
	if cap(wk.abTab) < need {
		wk.abTab = make([]int32, need)
	}
	ab := wk.abTab[:need]
	for si, pr := range proj {
		s := wk.db.Sequences[pr.Seq]
		a := ab[2*si*width : (2*si+1)*width]
		b := ab[(2*si+1)*width : (2*si+2)*width]
		a[0] = -1
		j := 0
		for k := 0; k < m; k++ {
			for s[j] != prefix[k] {
				j++
			}
			a[k+1] = int32(j)
			j++
		}
		b[m] = pr.Pos
		j = int(pr.Pos) - 1
		for k := m - 1; k >= 0; k-- {
			for s[j] != prefix[k] {
				j--
			}
			b[k] = int32(j)
			j--
		}
	}

	// Slot-major intersection: cnt[ev] counts the sequences (so far) whose
	// slot-i window contains ev; an event reaching len(proj) proves the
	// insertion. The strict cnt[ev] == si chain ensures membership in every
	// previous sequence.
	for i := 0; i <= m; i++ {
		cntEpoch := seqdb.BumpEpoch(&wk.cntEpoch, wk.cntStamp)
		for si, pr := range proj {
			s := wk.db.Sequences[pr.Seq]
			lo := ab[2*si*width+i] + 1
			hi := ab[(2*si+1)*width+i]
			wk.seen.Begin()
			for p := lo; p < hi; p++ {
				ev := s[p]
				if !wk.seen.TestAndSet(ev) {
					continue
				}
				if si == 0 {
					wk.cntStamp[ev] = cntEpoch
					wk.cnt[ev] = 1
					if len(proj) == 1 {
						return true
					}
					continue
				}
				if wk.cntStamp[ev] == cntEpoch && wk.cnt[ev] == int32(si) {
					wk.cnt[ev] = int32(si) + 1
					if si+1 == len(proj) {
						return true
					}
				}
			}
		}
	}
	return false
}

// premiseSignature hashes the premise's temporal-point identity — the last
// event plus the first temporal point in every supporting sequence — with
// stack-allocated FNV-1a (this runs once per premise node).
func premiseSignature(last seqdb.EventID, proj []mine.Proj) uint64 {
	h := seqdb.NewHash64().Mix16(int32(last))
	for _, pr := range proj {
		h = h.Mix32(pr.Seq).Mix32(pr.Pos)
	}
	return uint64(h)
}

func sameProj(a, b []mine.Proj) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ruleWorker mines consequent subtrees. One worker serves the whole run in
// sequential mode; parallel mode gives each pool goroutine its own worker so
// the scratch buffers are never shared. Unlike the premise walker, the
// consequent search retains nothing past a node's subtree, so extension sets
// are released back to the extender's arenas as soon as a node is explored.
type ruleWorker struct {
	idx       *seqdb.PositionIndex
	opts      Options
	nr        bool
	ext       *mine.Extender
	rules     []Rule
	stopped   bool // MaxRules reached (sequential mode only)
	nodes     int
	redundant int
}

func (m *ruleMiner) newWorker() *ruleWorker {
	return &ruleWorker{
		idx:  m.idx,
		opts: m.opts,
		nr:   m.nr,
		ext:  mine.NewExtender(m.db.Sequences, m.idx),
	}
}

// drainStats moves the worker's counters into stats.
func (w *ruleWorker) drainStats(stats *Stats) {
	stats.ConsequentNodesExplored += w.nodes
	stats.RulesSuppressedRedundant += w.redundant
	w.nodes = 0
	w.redundant = 0
}

// mineConsequents performs steps 2–4 for one premise: it projects the
// database at the premise's temporal points and grows consequents with
// confidence-based pruning (Theorem 3). Each record's projection entry
// tracks the earliest consequent embedding after its temporal point, and the
// temporal point itself travels as the entry's tag.
func (w *ruleWorker) mineConsequents(pre seqdb.Pattern, proj []mine.Proj) {
	if w.stopped {
		return
	}
	seqSup := len(proj)
	last := pre.Last()
	total := 0
	for _, pr := range proj {
		total += w.idx.CountFrom(int(pr.Seq), last, int(pr.Pos))
	}
	if total == 0 {
		return
	}
	records := make([]mine.Proj, 0, total)
	tags := make([]int32, 0, total)
	for _, pr := range proj {
		for _, t := range w.idx.PositionsFrom(int(pr.Seq), last, int(pr.Pos)) {
			records = append(records, mine.Proj{Seq: pr.Seq, Pos: t})
			tags = append(tags, t)
		}
	}
	w.growConsequent(pre, seqSup, len(records), nil, records, tags)
}

// growConsequent explores the consequent search tree for a fixed premise.
// records holds the temporal points at which the current consequent is still
// satisfied (tags), positioned at the earliest embedding of the consequent
// after each point.
func (w *ruleWorker) growConsequent(pre seqdb.Pattern, seqSup, totalTP int, post seqdb.Pattern, records []mine.Proj, tags []int32) {
	if w.stopped {
		return
	}
	w.nodes++

	// The confidence floor on surviving temporal points (Theorem 3) is fixed
	// for the whole premise, so it also decides which candidate extensions
	// are worth materialising: extensions below the floor are never recursed
	// into, and the redundancy check below can only match extensions whose
	// count equals len(records) >= minSatisfied.
	minSatisfied := int(w.opts.MinConfidence*float64(totalTP) - 1e-9)
	if float64(minSatisfied) < w.opts.MinConfidence*float64(totalTP)-1e-9 {
		minSatisfied++
	}
	if minSatisfied < 1 {
		minSatisfied = 1
	}

	es := w.ext.Extensions(records, tags, int32(minSatisfied))

	if len(post) > 0 {
		conf := float64(len(records)) / float64(totalTP)
		iSup := w.instanceSupportFor(post.Last(), records)
		emit := iSup >= w.opts.MinInstanceSupport && conf+1e-12 >= w.opts.MinConfidence
		if emit && w.nr && (w.opts.MaxConsequentLength == 0 || len(post) < w.opts.MaxConsequentLength) {
			// A consequent extension that keeps every statistic identical
			// makes this rule redundant (Definition 5.2 keeps the longer
			// consequent), so it is not reported on its own. Such an
			// extension has count == len(records) >= minSatisfied, so it is
			// always materialised.
			for i := range es.Exts {
				if int(es.Exts[i].Count) == len(records) && w.instanceSupportFor(es.Exts[i].Event, es.Exts[i].Proj) == iSup {
					emit = false
					w.redundant++
					break
				}
			}
		}
		if emit {
			w.rules = append(w.rules, Rule{
				Pre:             pre.Clone(),
				Post:            post.Clone(),
				SeqSupport:      seqSup,
				InstanceSupport: iSup,
				Confidence:      conf,
			})
			if w.opts.MaxRules > 0 && len(w.rules) >= w.opts.MaxRules {
				w.stopped = true
				w.ext.Release(es)
				return
			}
		}
	}

	if w.opts.MaxConsequentLength > 0 && len(post) >= w.opts.MaxConsequentLength {
		w.ext.Release(es)
		return
	}

	for i := range es.Exts {
		if w.stopped {
			break
		}
		// Theorem 3: extending the consequent can only lose satisfied temporal
		// points, so subtrees below the confidence threshold are pruned.
		if int(es.Exts[i].Count) < minSatisfied {
			continue
		}
		w.growConsequent(pre, seqSup, totalTP, post.Append(es.Exts[i].Event), es.Exts[i].Proj, es.Exts[i].Tags)
	}
	w.ext.Release(es)
}

// instanceSupportFor computes the i-support of pre -> post from the
// surviving records, with the last consequent event given explicitly so it
// can also score candidate extensions cheaply: the number of occurrences of
// that event at or after the earliest completion of pre ++ post in each
// sequence. Records stay grouped by sequence in increasing temporal-point
// order, so the first record per sequence carries the earliest completion.
func (w *ruleWorker) instanceSupportFor(last seqdb.EventID, records []mine.Proj) int {
	iSup := 0
	seenSeq := int32(-1)
	for _, r := range records {
		if r.Seq == seenSeq {
			continue // only the earliest temporal point per sequence matters
		}
		seenSeq = r.Seq
		iSup += w.idx.CountFrom(int(r.Seq), last, int(r.Pos))
	}
	return iSup
}
