package rules

import (
	"slices"
	"time"

	"specmine/internal/par"
	"specmine/internal/seqdb"
)

// MineFull mines every significant rule: all rules satisfying the s-support,
// i-support and confidence thresholds, with no redundancy removal (the "Full"
// series of Figures 2 and 3).
func MineFull(db *seqdb.Database, opts Options) (*Result, error) {
	return mineRules(db, opts, false)
}

// MineNonRedundant mines the non-redundant set of significant rules
// (Definition 5.2): premises whose temporal points coincide with those of a
// longer premise are dropped by a canonical dedup before any consequent is
// mined, consequents that can be extended without changing any statistic are
// not reported on their own, and a final filter removes any remaining
// redundancy (the "NR" series of Figures 2 and 3).
func MineNonRedundant(db *seqdb.Database, opts Options) (*Result, error) {
	return mineRules(db, opts, true)
}

// Mine dispatches on nonRedundant. It is a convenience for the facade and
// CLIs.
func Mine(db *seqdb.Database, opts Options, nonRedundant bool) (*Result, error) {
	return mineRules(db, opts, nonRedundant)
}

func mineRules(db *seqdb.Database, opts Options, nonRedundant bool) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := &ruleMiner{
		db:        db,
		idx:       db.FlatIndex(),
		opts:      opts,
		minSeqSup: opts.absoluteSeqSupport(db.NumSequences()),
		nr:        nonRedundant,
	}
	m.run()
	mined := m.rules
	if nonRedundant {
		mined = m.removeRedundant(mined)
	}
	// Stats are copied only now: the final redundancy filter still increments
	// RulesSuppressedRedundant.
	res := &Result{
		Rules:      mined,
		Stats:      m.stats,
		MinSeqSup:  m.minSeqSup,
		MinInstSup: opts.MinInstanceSupport,
		MinConf:    opts.MinConfidence,
	}
	res.Stats.RulesEmitted = len(res.Rules)
	res.Stats.Duration = time.Since(start)
	res.Sort()
	return res, nil
}

// premiseProj records, for one sequence containing the current premise, the
// position of the premise's earliest completion (its first temporal point).
type premiseProj struct {
	seq      int32
	firstEnd int32
}

// tpRecord tracks one temporal point of the premise during consequent growth:
// cur is the position right after the earliest embedding of the current
// consequent within the suffix that follows the temporal point.
type tpRecord struct {
	seq int32
	tp  int32
	cur int32
}

// consequentJob is one unit of parallel work: an enumerated premise whose
// consequent subtree is mined independently of every other premise. sig is
// the canonical signature of the premise's temporal-point identity (last
// event plus first temporal point per sequence), which drives the
// non-redundant miner's dedup.
type consequentJob struct {
	pre  seqdb.Pattern
	proj []premiseProj
	sig  uint64
}

type ruleMiner struct {
	db        *seqdb.Database
	idx       *seqdb.PositionIndex
	opts      Options
	minSeqSup int
	nr        bool

	rules []Rule
	stats Stats
}

// run executes the three mining phases. Phase 1 enumerates every s-frequent
// premise with its projection; seeds root independent subtrees and no state
// crosses them, so the premise tree fans out across Options.Workers (the
// order-dependent landmark pruning this replaces forced a sequential walk).
// Phase 2 (non-redundant mode) drops premises whose temporal points coincide
// with a longer premise's via canonical signature-based dedup — an
// order-free decision, unlike the landmark walk, so it is unaffected by the
// parallel enumeration. Phase 3 mines one consequent subtree per surviving
// premise, also across the worker pool. Merging phase outputs in seed / job
// order makes the result byte-identical for any worker count.
func (m *ruleMiner) run() {
	// Frequent single-event premises (Theorem 2 base case).
	events := m.idx.FrequentEventsBySeqSupport(m.minSeqSup)
	workers := m.opts.effectiveWorkers()

	// Phase 1: premise enumeration.
	type seedOut struct {
		jobs     []consequentJob
		explored int
		pruned   int
	}
	outs := make([]seedOut, len(events))
	pw := workers
	if pw > len(events) {
		pw = len(events)
	}
	par.ForWorker(len(events), pw, m.newPremiseWalker, func(wk *premiseWalker, i int) {
		wk.jobs = nil
		wk.explored = 0
		wk.pruned = 0
		wk.walkSeed(events[i])
		outs[i] = seedOut{jobs: wk.jobs, explored: wk.explored, pruned: wk.pruned}
	})
	var jobs []consequentJob
	for i := range outs {
		jobs = append(jobs, outs[i].jobs...)
		m.stats.PremisesExplored += outs[i].explored
		m.stats.PremisesPrunedRedundant += outs[i].pruned
	}

	// Phase 2: canonical premise dedup (Definition 5.2 applied at the
	// premise level; see dedupPremises).
	if m.nr {
		jobs = m.dedupPremises(jobs)
	}

	// Phase 3: consequent mining.
	if workers <= 1 {
		w := m.newWorker()
		for i := range jobs {
			w.mineConsequents(jobs[i].pre, jobs[i].proj)
			if w.stopped {
				break
			}
		}
		m.rules = w.rules
		w.drainStats(&m.stats)
		return
	}
	type jobOut struct {
		rules []Rule
		stats Stats
	}
	jouts := make([]jobOut, len(jobs))
	par.ForWorker(len(jobs), workers, m.newWorker, func(sub *ruleWorker, i int) {
		sub.rules = nil
		sub.mineConsequents(jobs[i].pre, jobs[i].proj)
		jouts[i].rules = sub.rules
		sub.drainStats(&jouts[i].stats)
	})
	for i := range jouts {
		m.rules = append(m.rules, jouts[i].rules...)
		m.stats.ConsequentNodesExplored += jouts[i].stats.ConsequentNodesExplored
		m.stats.RulesSuppressedRedundant += jouts[i].stats.RulesSuppressedRedundant
	}
}

// dedupPremises drops every premise that has an equivalent proper
// super-sequence among the enumerated premises. Two premises are equivalent
// when they share the last event and the first temporal point in every
// sequence: their full temporal-point sets then coincide, so for any
// consequent the two resulting rules carry identical statistics, and
// Definition 5.2 keeps the one with the longer (super-sequence)
// concatenation. The decision depends only on the premise set — not on any
// exploration order — so it commutes with the parallel walk; rules the
// dropped premises would have produced are covered by the kept equivalent
// super-sequences (redundancy chains terminate at a maximal premise, which
// is never dropped), and the exact removeRedundant filter still runs last.
func (m *ruleMiner) dedupPremises(jobs []consequentJob) []consequentJob {
	groups := make(map[uint64][]int32, len(jobs))
	for i := range jobs {
		groups[jobs[i].sig] = append(groups[jobs[i].sig], int32(i))
	}
	// Decide every drop against the pristine job list before compacting:
	// the group lists address jobs by index, so compacting in place while
	// still deciding would compare against overwritten slots.
	drop := make([]bool, len(jobs))
	for i := range jobs {
		last := jobs[i].pre.Last()
		for _, k := range groups[jobs[i].sig] {
			if int(k) == i {
				continue
			}
			other := &jobs[k]
			if len(other.pre) <= len(jobs[i].pre) || other.pre.Last() != last || !sameProj(other.proj, jobs[i].proj) {
				continue
			}
			if jobs[i].pre.IsSubsequenceOf(other.pre) {
				drop[i] = true
				break
			}
		}
	}
	kept := jobs[:0]
	for i := range jobs {
		if drop[i] {
			m.stats.PremisesPrunedRedundant++
			continue
		}
		kept = append(kept, jobs[i])
	}
	return kept
}

// premiseWalker enumerates the premise search tree below one seed event
// (step 1 of Section 5). One walker serves the whole run in sequential mode;
// parallel mode gives each pool goroutine its own walker so the scratch
// buffers are never shared.
type premiseWalker struct {
	db        *seqdb.Database
	idx       *seqdb.PositionIndex
	opts      Options
	minSeqSup int
	nr        bool

	scratch  seqdb.EventSlots
	path     seqdb.Pattern
	jobs     []consequentJob
	explored int
	pruned   int

	// Backscan scratch (see hasEquivalentInsertion).
	seenStamp []uint32
	seenEpoch uint32
	cnt       []int32
	cntStamp  []uint32
	cntEpoch  uint32
	abTab     []int32
}

func (m *ruleMiner) newPremiseWalker() *premiseWalker {
	n := m.idx.NumEvents()
	return &premiseWalker{
		db:        m.db,
		idx:       m.idx,
		opts:      m.opts,
		minSeqSup: m.minSeqSup,
		nr:        m.nr,
		scratch:   seqdb.NewEventSlots(n),
		path:      make(seqdb.Pattern, 0, 32),
		seenStamp: make([]uint32, n),
		cnt:       make([]int32, n),
		cntStamp:  make([]uint32, n),
	}
}

func (wk *premiseWalker) walkSeed(e seqdb.EventID) {
	seqs := wk.idx.SeqsContaining(e)
	proj := make([]premiseProj, 0, len(seqs))
	for _, si := range seqs {
		proj = append(proj, premiseProj{seq: si, firstEnd: wk.idx.Positions(int(si), e)[0]})
	}
	wk.path = append(wk.path[:0], e)
	wk.growPremise(wk.path, proj)
}

// growPremise records the node as a consequent job and recurses into its
// s-frequent extensions. In non-redundant mode, premises dominated by an
// equivalent single-insertion super-sequence are skipped subtree and all:
// the dominating premise's subtree produces rules with identical statistics
// and longer concatenations for everything this subtree could emit.
func (wk *premiseWalker) growPremise(pre seqdb.Pattern, proj []premiseProj) {
	wk.explored++
	if wk.nr && wk.hasEquivalentInsertion(pre, proj) {
		wk.pruned++
		return
	}
	wk.jobs = append(wk.jobs, consequentJob{
		pre:  pre.Clone(),
		proj: proj,
		sig:  premiseSignature(pre.Last(), proj),
	})

	if wk.opts.MaxPremiseLength > 0 && len(pre) >= wk.opts.MaxPremiseLength {
		return
	}

	// Candidate premise extensions: events occurring after the first temporal
	// point in at least minSeqSup sequences (Theorem 2, apriori on s-support).
	// An event extends the projection at its first occurrence within each
	// suffix, which the index's prev-occurrence chain detects in O(1): s[j] is
	// the first occurrence after firstEnd exactly when its previous occurrence
	// precedes firstEnd+1.
	sc := &wk.scratch
	sc.Begin()
	for _, pr := range proj {
		s := wk.db.Sequences[pr.seq]
		for j := int(pr.firstEnd) + 1; j < len(s); j++ {
			if wk.idx.OccursWithin(int(pr.seq), j, int(pr.firstEnd)+1) {
				continue
			}
			sc.Add(s[j])
		}
	}
	if sc.Len() == 0 {
		return
	}

	// Only extensions meeting the s-support threshold (Theorem 2) are
	// materialised: the arena slices outlive the node inside jobs, so
	// infrequent projections would be pinned for nothing.
	type ext struct {
		event seqdb.EventID
		count int32
		proj  []premiseProj
	}
	exts := make([]ext, sc.Len())
	total := 0
	for slot := range exts {
		c := sc.Count(slot)
		exts[slot] = ext{event: sc.Event(slot), count: c}
		if int(c) >= wk.minSeqSup {
			total += int(c)
		}
	}
	arena := make([]premiseProj, total)
	off := 0
	for slot := range exts {
		if c := int(exts[slot].count); c >= wk.minSeqSup {
			exts[slot].proj = arena[off : off : off+c]
			off += c
		}
	}
	for _, pr := range proj {
		s := wk.db.Sequences[pr.seq]
		for j := int(pr.firstEnd) + 1; j < len(s); j++ {
			if wk.idx.OccursWithin(int(pr.seq), j, int(pr.firstEnd)+1) {
				continue
			}
			x := &exts[sc.Slot(s[j])]
			if x.proj != nil {
				x.proj = append(x.proj, premiseProj{seq: pr.seq, firstEnd: int32(j)})
			}
		}
	}
	slices.SortFunc(exts, func(a, b ext) int { return int(a.event) - int(b.event) })

	for i := range exts {
		if int(exts[i].count) < wk.minSeqSup {
			continue
		}
		wk.growPremise(append(pre, exts[i].event), exts[i].proj)
	}
}

// hasEquivalentInsertion is the canonical (order-free) counterpart of
// landmark-based premise pruning: it reports whether some single event can be
// inserted into pre's prefix to give a longer premise with the *same*
// temporal-point identity — same last event, same first temporal point in
// every supporting sequence, hence the same supporting sequences. When such
// an insertion exists (and stays within MaxPremiseLength, so the dominating
// premise is itself enumerated), every rule minable from pre or any of its
// extensions is redundant per Definition 5.2 against the dominating
// premise's subtree, so pre's subtree is skipped. Chains of insertions
// terminate at a maximal premise, which this test never skips.
//
// The test is exact, in the BIDE backward-extension style: an event e can be
// inserted at slot i of the prefix P' = pre[:len-1] while preserving the
// first temporal point fe of a sequence s iff e occurs strictly between the
// end of the greedy (earliest) embedding of P'[:i] and the start of the
// latest embedding of P'[i:] within s[0..fe-1]. The skip fires iff for some
// slot one event lies in that window in every supporting sequence.
func (wk *premiseWalker) hasEquivalentInsertion(pre seqdb.Pattern, proj []premiseProj) bool {
	if wk.opts.MaxPremiseLength > 0 && len(pre)+1 > wk.opts.MaxPremiseLength {
		return false
	}
	m := len(pre) - 1
	prefix := pre[:m]

	// Per sequence: a[i] = end position of the greedy embedding of P'[:i]
	// (-1 for the empty prefix), b[i] = start position of the latest
	// embedding of P'[i:] within s[0..fe-1] (fe for the empty suffix). Both
	// embeddings exist because fe is pre's first temporal point, so the
	// prefix embeds within s[0..fe-1].
	width := m + 1
	need := 2 * width * len(proj)
	if cap(wk.abTab) < need {
		wk.abTab = make([]int32, need)
	}
	ab := wk.abTab[:need]
	for si, pr := range proj {
		s := wk.db.Sequences[pr.seq]
		a := ab[2*si*width : (2*si+1)*width]
		b := ab[(2*si+1)*width : (2*si+2)*width]
		a[0] = -1
		j := 0
		for k := 0; k < m; k++ {
			for s[j] != prefix[k] {
				j++
			}
			a[k+1] = int32(j)
			j++
		}
		b[m] = pr.firstEnd
		j = int(pr.firstEnd) - 1
		for k := m - 1; k >= 0; k-- {
			for s[j] != prefix[k] {
				j--
			}
			b[k] = int32(j)
			j--
		}
	}

	// Slot-major intersection: cnt[ev] counts the sequences (so far) whose
	// slot-i window contains ev; an event reaching len(proj) proves the
	// insertion. The strict cnt[ev] == si chain ensures membership in every
	// previous sequence.
	for i := 0; i <= m; i++ {
		cntEpoch := seqdb.BumpEpoch(&wk.cntEpoch, wk.cntStamp)
		for si, pr := range proj {
			s := wk.db.Sequences[pr.seq]
			lo := ab[2*si*width+i] + 1
			hi := ab[(2*si+1)*width+i]
			seenEpoch := seqdb.BumpEpoch(&wk.seenEpoch, wk.seenStamp)
			for p := lo; p < hi; p++ {
				ev := s[p]
				if wk.seenStamp[ev] == seenEpoch {
					continue
				}
				wk.seenStamp[ev] = seenEpoch
				if si == 0 {
					wk.cntStamp[ev] = cntEpoch
					wk.cnt[ev] = 1
					if len(proj) == 1 {
						return true
					}
					continue
				}
				if wk.cntStamp[ev] == cntEpoch && wk.cnt[ev] == int32(si) {
					wk.cnt[ev] = int32(si) + 1
					if si+1 == len(proj) {
						return true
					}
				}
			}
		}
	}
	return false
}

// premiseSignature hashes the premise's temporal-point identity — the last
// event plus the first temporal point in every supporting sequence — with
// stack-allocated FNV-1a (this runs once per premise node).
func premiseSignature(last seqdb.EventID, proj []premiseProj) uint64 {
	h := seqdb.NewHash64().Mix16(int32(last))
	for _, pr := range proj {
		h = h.Mix32(pr.seq).Mix32(pr.firstEnd)
	}
	return uint64(h)
}

func sameProj(a, b []premiseProj) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ruleWorker mines consequent subtrees. One worker serves the whole run in
// sequential mode; parallel mode gives each pool goroutine its own worker so
// the scratch buffers are never shared.
type ruleWorker struct {
	db        *seqdb.Database
	idx       *seqdb.PositionIndex
	opts      Options
	nr        bool
	scratch   seqdb.EventSlots
	rules     []Rule
	stopped   bool // MaxRules reached (sequential mode only)
	nodes     int
	redundant int
}

func (m *ruleMiner) newWorker() *ruleWorker {
	return &ruleWorker{
		db:      m.db,
		idx:     m.idx,
		opts:    m.opts,
		nr:      m.nr,
		scratch: seqdb.NewEventSlots(m.idx.NumEvents()),
	}
}

// drainStats moves the worker's counters into stats.
func (w *ruleWorker) drainStats(stats *Stats) {
	stats.ConsequentNodesExplored += w.nodes
	stats.RulesSuppressedRedundant += w.redundant
	w.nodes = 0
	w.redundant = 0
}

// mineConsequents performs steps 2–4 for one premise: it projects the
// database at the premise's temporal points and grows consequents with
// confidence-based pruning (Theorem 3).
func (w *ruleWorker) mineConsequents(pre seqdb.Pattern, proj []premiseProj) {
	if w.stopped {
		return
	}
	seqSup := len(proj)
	last := pre.Last()
	total := 0
	for _, pr := range proj {
		total += w.idx.CountFrom(int(pr.seq), last, int(pr.firstEnd))
	}
	if total == 0 {
		return
	}
	records := make([]tpRecord, 0, total)
	for _, pr := range proj {
		for _, t := range w.idx.PositionsFrom(int(pr.seq), last, int(pr.firstEnd)) {
			records = append(records, tpRecord{seq: pr.seq, tp: t, cur: t + 1})
		}
	}
	w.growConsequent(pre, seqSup, len(records), nil, records)
}

// growConsequent explores the consequent search tree for a fixed premise.
// records holds the temporal points at which the current consequent is still
// satisfied, together with the position reached by its earliest embedding.
type consequentExt struct {
	event   seqdb.EventID
	count   int32
	records []tpRecord
}

func (w *ruleWorker) growConsequent(pre seqdb.Pattern, seqSup, totalTP int, post seqdb.Pattern, records []tpRecord) {
	if w.stopped {
		return
	}
	w.nodes++

	// The confidence floor on surviving temporal points (Theorem 3) is fixed
	// for the whole premise, so it also decides which candidate extensions
	// are worth materialising below.
	minSatisfied := int(w.opts.MinConfidence*float64(totalTP) - 1e-9)
	if float64(minSatisfied) < w.opts.MinConfidence*float64(totalTP)-1e-9 {
		minSatisfied++
	}
	if minSatisfied < 1 {
		minSatisfied = 1
	}

	// Candidate consequent extensions with their surviving records: an event
	// survives a record at its first occurrence in the record's suffix, which
	// is again a single prev-occurrence read per position. Extensions below
	// the confidence floor keep only their count: they are never recursed
	// into, and the redundancy check below can only match extensions whose
	// count equals len(records) >= minSatisfied.
	sc := &w.scratch
	sc.Begin()
	for _, r := range records {
		s := w.db.Sequences[r.seq]
		for j := int(r.cur); j < len(s); j++ {
			if w.idx.OccursWithin(int(r.seq), j, int(r.cur)) {
				continue
			}
			sc.Add(s[j])
		}
	}
	var exts []consequentExt
	if sc.Len() > 0 {
		exts = make([]consequentExt, sc.Len())
		total := 0
		for slot := range exts {
			c := sc.Count(slot)
			exts[slot] = consequentExt{event: sc.Event(slot), count: c}
			if int(c) >= minSatisfied {
				total += int(c)
			}
		}
		arena := make([]tpRecord, total)
		off := 0
		for slot := range exts {
			if c := int(exts[slot].count); c >= minSatisfied {
				exts[slot].records = arena[off : off : off+c]
				off += c
			}
		}
		for _, r := range records {
			s := w.db.Sequences[r.seq]
			for j := int(r.cur); j < len(s); j++ {
				if w.idx.OccursWithin(int(r.seq), j, int(r.cur)) {
					continue
				}
				x := &exts[sc.Slot(s[j])]
				if x.records != nil {
					x.records = append(x.records, tpRecord{seq: r.seq, tp: r.tp, cur: int32(j) + 1})
				}
			}
		}
		slices.SortFunc(exts, func(a, b consequentExt) int { return int(a.event) - int(b.event) })
	}

	if len(post) > 0 {
		conf := float64(len(records)) / float64(totalTP)
		iSup := w.instanceSupport(post, records)
		emit := iSup >= w.opts.MinInstanceSupport && conf+1e-12 >= w.opts.MinConfidence
		if emit && w.nr && (w.opts.MaxConsequentLength == 0 || len(post) < w.opts.MaxConsequentLength) {
			// A consequent extension that keeps every statistic identical
			// makes this rule redundant (Definition 5.2 keeps the longer
			// consequent), so it is not reported on its own. Such an
			// extension has count == len(records) >= minSatisfied, so it is
			// always materialised.
			for i := range exts {
				if int(exts[i].count) == len(records) && w.instanceSupportFor(exts[i].event, exts[i].records) == iSup {
					emit = false
					w.redundant++
					break
				}
			}
		}
		if emit {
			w.rules = append(w.rules, Rule{
				Pre:             pre.Clone(),
				Post:            post.Clone(),
				SeqSupport:      seqSup,
				InstanceSupport: iSup,
				Confidence:      conf,
			})
			if w.opts.MaxRules > 0 && len(w.rules) >= w.opts.MaxRules {
				w.stopped = true
				return
			}
		}
	}

	if w.opts.MaxConsequentLength > 0 && len(post) >= w.opts.MaxConsequentLength {
		return
	}

	for i := range exts {
		if w.stopped {
			return
		}
		// Theorem 3: extending the consequent can only lose satisfied temporal
		// points, so subtrees below the confidence threshold are pruned.
		if int(exts[i].count) < minSatisfied {
			continue
		}
		w.growConsequent(pre, seqSup, totalTP, post.Append(exts[i].event), exts[i].records)
	}
}

// instanceSupport computes the i-support of pre -> post from the surviving
// temporal-point records: the number of occurrences of last(post) at or after
// the earliest completion of pre ++ post in each sequence.
func (w *ruleWorker) instanceSupport(post seqdb.Pattern, records []tpRecord) int {
	return w.instanceSupportFor(post.Last(), records)
}

// instanceSupportFor is instanceSupport with the last consequent event given
// explicitly, so it can also score candidate extensions cheaply.
func (w *ruleWorker) instanceSupportFor(last seqdb.EventID, records []tpRecord) int {
	iSup := 0
	seenSeq := int32(-1)
	for _, r := range records {
		if r.seq == seenSeq {
			continue // only the earliest temporal point per sequence matters
		}
		seenSeq = r.seq
		iSup += w.idx.CountFrom(int(r.seq), last, int(r.cur)-1)
	}
	return iSup
}
