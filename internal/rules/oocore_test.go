package rules

import (
	"strings"
	"testing"
)

// TestMineSourceRejectsMaxRules: the rule-count cutoff depends on sequential
// emission order over one global database, which a per-seed run cannot
// honour — the option must be rejected before any source access (nil is safe
// here precisely because the check fires first).
func TestMineSourceRejectsMaxRules(t *testing.T) {
	_, err := MineSource(nil, Options{MinSeqSupport: 1, MinInstanceSupport: 1,
		MinConfidence: 0.5, MaxRules: 2}, true)
	if err == nil || !strings.Contains(err.Error(), "MaxRules") {
		t.Fatalf("MaxRules accepted out-of-core: %v", err)
	}
}
