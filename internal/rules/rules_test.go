package rules

import (
	"math"
	"math/rand"
	"testing"

	"specmine/internal/seqdb"
)

func mkdb(traces ...[]string) *seqdb.Database {
	db := seqdb.NewDatabase()
	for _, t := range traces {
		db.AppendNames(t...)
	}
	return db
}

func TestOptionsValidate(t *testing.T) {
	valid := Options{MinSeqSupport: 1, MinInstanceSupport: 1, MinConfidence: 0.5}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	bad := []Options{
		{},
		{MinSeqSupport: 1, MinInstanceSupport: 0, MinConfidence: 0.5},
		{MinSeqSupport: 1, MinInstanceSupport: 1, MinConfidence: 0},
		{MinSeqSupport: 1, MinInstanceSupport: 1, MinConfidence: 1.5},
		{MinSeqSupport: 1, MinInstanceSupport: 1, MinConfidence: 0.5, MaxPremiseLength: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	if got := (Options{MinSeqSupportRel: 0.5, MinInstanceSupport: 1, MinConfidence: 1}).absoluteSeqSupport(10); got != 5 {
		t.Errorf("absoluteSeqSupport=%d want 5", got)
	}
	if _, err := MineFull(seqdb.NewDatabase(), Options{}); err == nil {
		t.Errorf("MineFull accepted invalid options")
	}
	if _, err := MineNonRedundant(seqdb.NewDatabase(), Options{}); err == nil {
		t.Errorf("MineNonRedundant accepted invalid options")
	}
}

func TestEvaluateRuleLockUnlock(t *testing.T) {
	// "Whenever a lock is acquired, eventually it is released."
	db := mkdb(
		[]string{"lock", "use", "unlock"},
		[]string{"lock", "use", "unlock", "lock", "unlock"},
		[]string{"lock", "use"}, // violating trace
		[]string{"idle"},
	)
	pre := seqdb.ParsePattern(db.Dict, "lock")
	post := seqdb.ParsePattern(db.Dict, "unlock")
	r := EvaluateRule(db, pre, post)
	if r.SeqSupport != 3 {
		t.Errorf("s-sup=%d want 3", r.SeqSupport)
	}
	// Temporal points of <lock>: 4 (one in trace 1, two in trace 2, one in
	// trace 3). Satisfied: 3 (trace 3's is not followed by unlock).
	if math.Abs(r.Confidence-0.75) > 1e-9 {
		t.Errorf("conf=%v want 0.75", r.Confidence)
	}
	// Temporal points of <lock, unlock>: trace1: unlock@2 -> 1; trace2:
	// unlock@2, unlock@4 -> 2; total 3.
	if r.InstanceSupport != 3 {
		t.Errorf("i-sup=%d want 3", r.InstanceSupport)
	}
}

func TestTemporalPointsDefinition(t *testing.T) {
	db := mkdb([]string{"a", "b", "a", "b", "b"})
	s := db.Sequences[0]
	pre := seqdb.ParsePattern(db.Dict, "a b")
	got := TemporalPoints(s, pre)
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("temporal points %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("temporal points %v want %v", got, want)
		}
	}
}

func TestMineFullSimpleRule(t *testing.T) {
	db := mkdb(
		[]string{"lock", "use", "unlock"},
		[]string{"lock", "write", "unlock"},
		[]string{"lock", "read", "unlock"},
	)
	res, err := MineFull(db, Options{MinSeqSupport: 3, MinInstanceSupport: 1, MinConfidence: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	rule, ok := res.Find(seqdb.ParsePattern(db.Dict, "lock"), seqdb.ParsePattern(db.Dict, "unlock"))
	if !ok {
		t.Fatalf("lock -> unlock not mined; got:\n%s", res.Render(db.Dict, 0))
	}
	if rule.SeqSupport != 3 || rule.InstanceSupport != 3 || rule.Confidence != 1.0 {
		t.Errorf("lock -> unlock stats wrong: %+v", rule)
	}
	// unlock -> lock must not appear at confidence 1.0.
	if _, ok := res.Find(seqdb.ParsePattern(db.Dict, "unlock"), seqdb.ParsePattern(db.Dict, "lock")); ok {
		t.Errorf("unlock -> lock mined despite zero confidence")
	}
}

func TestMinedRuleStatisticsMatchEvaluateRule(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 10; iter++ {
		db := seqdb.NewDatabase()
		for i := 0; i < 5; i++ {
			n := 2 + rng.Intn(8)
			names := make([]string, n)
			for j := range names {
				names[j] = string(rune('a' + rng.Intn(3)))
			}
			db.AppendNames(names...)
		}
		opts := Options{MinSeqSupport: 2, MinInstanceSupport: 1, MinConfidence: 0.5, MaxPremiseLength: 3, MaxConsequentLength: 3}
		res, err := MineFull(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Rules {
			want := EvaluateRule(db, r.Pre, r.Post)
			if want.SeqSupport != r.SeqSupport || want.InstanceSupport != r.InstanceSupport ||
				math.Abs(want.Confidence-r.Confidence) > 1e-9 {
				t.Fatalf("iter %d: stats mismatch for %s: mined %+v direct %+v", iter, r.String(db.Dict), r, want)
			}
			if r.Confidence+1e-9 < opts.MinConfidence {
				t.Fatalf("iter %d: rule below confidence threshold emitted: %s", iter, r.String(db.Dict))
			}
			if r.SeqSupport < opts.MinSeqSupport || r.InstanceSupport < opts.MinInstanceSupport {
				t.Fatalf("iter %d: rule below support thresholds emitted: %s", iter, r.String(db.Dict))
			}
		}
	}
}

// bruteRules enumerates every significant rule by generating all premise and
// consequent combinations up to the given lengths and scoring them with
// EvaluateRule.
func bruteRules(db *seqdb.Database, opts Options, maxPre, maxPost int) map[string]Rule {
	events := db.FrequentEvents(1)
	var patterns []seqdb.Pattern
	var gen func(p seqdb.Pattern, maxLen int)
	gen = func(p seqdb.Pattern, maxLen int) {
		if len(p) > 0 {
			patterns = append(patterns, p.Clone())
		}
		if len(p) >= maxLen {
			return
		}
		for _, e := range events {
			gen(p.Append(e), maxLen)
		}
	}
	maxLen := maxPre
	if maxPost > maxLen {
		maxLen = maxPost
	}
	gen(nil, maxLen)

	minSeqSup := opts.absoluteSeqSupport(db.NumSequences())
	out := make(map[string]Rule)
	for _, pre := range patterns {
		if len(pre) > maxPre {
			continue
		}
		for _, post := range patterns {
			if len(post) > maxPost {
				continue
			}
			r := EvaluateRule(db, pre, post)
			if r.SeqSupport >= minSeqSup && r.InstanceSupport >= opts.MinInstanceSupport &&
				r.Confidence+1e-12 >= opts.MinConfidence {
				out[r.Key()] = r
			}
		}
	}
	return out
}

func TestMineFullAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for iter := 0; iter < 12; iter++ {
		db := seqdb.NewDatabase()
		for i := 0; i < 4; i++ {
			n := 2 + rng.Intn(6)
			names := make([]string, n)
			for j := range names {
				names[j] = string(rune('a' + rng.Intn(3)))
			}
			db.AppendNames(names...)
		}
		opts := Options{
			MinSeqSupport:       2,
			MinInstanceSupport:  1,
			MinConfidence:       0.6,
			MaxPremiseLength:    2,
			MaxConsequentLength: 2,
		}
		res, err := MineFull(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteRules(db, opts, 2, 2)
		got := make(map[string]Rule)
		for _, r := range res.Rules {
			got[r.Key()] = r
		}
		for key, w := range want {
			g, ok := got[key]
			if !ok {
				t.Fatalf("iter %d: full miner missed rule %s -> %s (db=%v)", iter, w.Pre.String(db.Dict), w.Post.String(db.Dict), db.Sequences)
			}
			if g.SeqSupport != w.SeqSupport || g.InstanceSupport != w.InstanceSupport || math.Abs(g.Confidence-w.Confidence) > 1e-9 {
				t.Fatalf("iter %d: stats mismatch for %s: %+v vs %+v", iter, key, g, w)
			}
		}
		for key := range got {
			if _, ok := want[key]; !ok {
				t.Fatalf("iter %d: full miner emitted unexpected rule %s", iter, key)
			}
		}
	}
}

func TestMineNonRedundantCoversFullSet(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for iter := 0; iter < 10; iter++ {
		db := seqdb.NewDatabase()
		for i := 0; i < 4; i++ {
			n := 2 + rng.Intn(6)
			names := make([]string, n)
			for j := range names {
				names[j] = string(rune('a' + rng.Intn(3)))
			}
			db.AppendNames(names...)
		}
		opts := Options{
			MinSeqSupport:       2,
			MinInstanceSupport:  1,
			MinConfidence:       0.6,
			MaxPremiseLength:    2,
			MaxConsequentLength: 2,
		}
		full, err := MineFull(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		nr, err := MineNonRedundant(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(nr.Rules) > len(full.Rules) {
			t.Fatalf("iter %d: NR set (%d) larger than full set (%d)", iter, len(nr.Rules), len(full.Rules))
		}
		fullByKey := make(map[string]Rule)
		for _, r := range full.Rules {
			fullByKey[r.Key()] = r
		}
		// 1. Every NR rule is a significant rule with identical statistics.
		for _, r := range nr.Rules {
			f, ok := fullByKey[r.Key()]
			if !ok {
				t.Fatalf("iter %d: NR rule %s not in full set", iter, r.String(db.Dict))
			}
			if f.SeqSupport != r.SeqSupport || f.InstanceSupport != r.InstanceSupport || math.Abs(f.Confidence-r.Confidence) > 1e-9 {
				t.Fatalf("iter %d: NR stats differ from full for %s", iter, r.Key())
			}
		}
		// 2. Every full rule is either in the NR set or redundant with respect
		//    to it: some NR rule with identical statistics has a super-sequence
		//    concatenation.
		for _, f := range full.Rules {
			covered := false
			fc := f.Concat()
			for _, r := range nr.Rules {
				if r.SeqSupport == f.SeqSupport && r.InstanceSupport == f.InstanceSupport &&
					math.Abs(r.Confidence-f.Confidence) < 1e-9 && fc.IsSubsequenceOf(r.Concat()) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("iter %d: full rule %s not covered by NR set\nfull:\n%snr:\n%s",
					iter, f.String(db.Dict), full.Render(db.Dict, 0), nr.Render(db.Dict, 0))
			}
		}
		// 3. No rule in the NR set is redundant with respect to the NR set.
		for _, r := range nr.Rules {
			if IsRedundant(r, nr.Rules) {
				t.Fatalf("iter %d: NR set still contains redundant rule %s", iter, r.String(db.Dict))
			}
		}
	}
}

func TestInitTerminationMultiEventRule(t *testing.T) {
	// "Whenever a series of initialization events is performed, eventually a
	// series of termination events is also performed." — a multi-event rule
	// that two-event miners (Section 2's discussion of Perracotta) cannot
	// express.
	db := mkdb(
		[]string{"init_cfg", "init_net", "work", "work", "stop_net", "stop_cfg"},
		[]string{"init_cfg", "init_net", "work", "stop_net", "stop_cfg"},
		[]string{"init_cfg", "init_net", "stop_net", "stop_cfg"},
		[]string{"noise", "noise"},
	)
	opts := Options{MinSeqSupport: 3, MinInstanceSupport: 1, MinConfidence: 1.0}
	res, err := MineNonRedundant(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The maximal initialization/termination behaviour must be captured. Per
	// Definition 5.2's tie-break, among the equal-concatenation variants the
	// one with the shortest premise is retained.
	pre := seqdb.ParsePattern(db.Dict, "init_cfg")
	post := seqdb.ParsePattern(db.Dict, "init_net stop_net stop_cfg")
	rule, ok := res.Find(pre, post)
	if !ok {
		t.Fatalf("initialization -> termination rule not found:\n%s", res.Render(db.Dict, 0))
	}
	if rule.SeqSupport != 3 || rule.Confidence != 1.0 {
		t.Errorf("unexpected stats: %+v", rule)
	}
	// The equal-concatenation variant with the longer premise is redundant.
	if _, ok := res.Find(seqdb.ParsePattern(db.Dict, "init_cfg init_net"), seqdb.ParsePattern(db.Dict, "stop_net stop_cfg")); ok {
		t.Errorf("longer-premise variant should have been removed by the tie-break:\n%s", res.Render(db.Dict, 0))
	}
	// The full miner, by contrast, reports both variants.
	full, err := MineFull(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := full.Find(seqdb.ParsePattern(db.Dict, "init_cfg init_net"), seqdb.ParsePattern(db.Dict, "stop_net stop_cfg")); !ok {
		t.Errorf("full miner should report the longer-premise variant:\n%s", full.Render(db.Dict, 0))
	}
}

func TestNonRedundantSuppressesShorterConsequents(t *testing.T) {
	db := mkdb(
		[]string{"a", "x", "y", "z"},
		[]string{"a", "x", "y", "z"},
		[]string{"a", "x", "y", "z"},
	)
	res, err := MineNonRedundant(db, Options{MinSeqSupport: 3, MinInstanceSupport: 1, MinConfidence: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	// a -> <x> and a -> <x,y> are redundant with respect to a -> <x,y,z>.
	if _, ok := res.Find(seqdb.ParsePattern(db.Dict, "a"), seqdb.ParsePattern(db.Dict, "x")); ok {
		t.Errorf("a -> x should be redundant:\n%s", res.Render(db.Dict, 0))
	}
	if _, ok := res.Find(seqdb.ParsePattern(db.Dict, "a"), seqdb.ParsePattern(db.Dict, "x y z")); !ok {
		t.Errorf("a -> x y z missing:\n%s", res.Render(db.Dict, 0))
	}
	full, err := MineFull(db, Options{MinSeqSupport: 3, MinInstanceSupport: 1, MinConfidence: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rules) <= len(res.Rules) {
		t.Errorf("full (%d) should exceed NR (%d)", len(full.Rules), len(res.Rules))
	}
}

func TestRuleHelpers(t *testing.T) {
	d := seqdb.NewDictionary()
	r := Rule{
		Pre:             seqdb.ParsePattern(d, "a b"),
		Post:            seqdb.ParsePattern(d, "c"),
		SeqSupport:      2,
		InstanceSupport: 3,
		Confidence:      0.5,
	}
	if r.Concat().String(d) != "<a, b, c>" {
		t.Errorf("Concat=%s", r.Concat().String(d))
	}
	if r.String(d) == "" || r.Key() == "" {
		t.Errorf("String/Key empty")
	}
	res := &Result{Rules: []Rule{r}}
	if out := res.Render(d, 0); out == "" {
		t.Errorf("Render empty")
	}
	if _, ok := res.Find(r.Pre, r.Post); !ok {
		t.Errorf("Find failed")
	}
	groups := GroupByStatistics([]Rule{r, r})
	if len(groups) != 1 {
		t.Errorf("GroupByStatistics groups=%d", len(groups))
	}
}

func TestFilterRedundant(t *testing.T) {
	d := seqdb.NewDictionary()
	short := Rule{Pre: seqdb.ParsePattern(d, "a"), Post: seqdb.ParsePattern(d, "b"), SeqSupport: 2, InstanceSupport: 2, Confidence: 1}
	long := Rule{Pre: seqdb.ParsePattern(d, "a"), Post: seqdb.ParsePattern(d, "b c"), SeqSupport: 2, InstanceSupport: 2, Confidence: 1}
	other := Rule{Pre: seqdb.ParsePattern(d, "x"), Post: seqdb.ParsePattern(d, "y"), SeqSupport: 3, InstanceSupport: 3, Confidence: 1}
	out := FilterRedundant([]Rule{short, long, other})
	if len(out) != 2 {
		t.Fatalf("FilterRedundant kept %d rules, want 2", len(out))
	}
	for _, r := range out {
		if r.Key() == short.Key() {
			t.Errorf("short rule should have been removed")
		}
	}
	// Same concatenation: prefer the shorter premise.
	a := Rule{Pre: seqdb.ParsePattern(d, "a b"), Post: seqdb.ParsePattern(d, "c"), SeqSupport: 2, InstanceSupport: 2, Confidence: 1}
	b := Rule{Pre: seqdb.ParsePattern(d, "a"), Post: seqdb.ParsePattern(d, "b c"), SeqSupport: 2, InstanceSupport: 2, Confidence: 1}
	out2 := FilterRedundant([]Rule{a, b})
	if len(out2) != 1 || out2[0].Key() != b.Key() {
		t.Errorf("tie-break should keep the shorter premise: %v", out2)
	}
}

func TestMaxRulesStopsEarly(t *testing.T) {
	db := mkdb(
		[]string{"a", "b", "c", "d"},
		[]string{"a", "b", "c", "d"},
	)
	res, err := MineFull(db, Options{MinSeqSupport: 2, MinInstanceSupport: 1, MinConfidence: 0.5, MaxRules: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) != 5 {
		t.Errorf("MaxRules not honoured: %d", len(res.Rules))
	}
}

func TestStatsPopulated(t *testing.T) {
	db := mkdb(
		[]string{"a", "b", "a", "b"},
		[]string{"a", "b"},
	)
	res, err := MineNonRedundant(db, Options{MinSeqSupport: 2, MinInstanceSupport: 1, MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PremisesExplored == 0 || res.Stats.ConsequentNodesExplored == 0 {
		t.Errorf("stats not recorded: %+v", res.Stats)
	}
	if res.Stats.RulesEmitted != len(res.Rules) {
		t.Errorf("RulesEmitted mismatch")
	}
	if res.Stats.Duration <= 0 {
		t.Errorf("Duration not recorded")
	}
}
