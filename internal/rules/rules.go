// Package rules implements recurrent rule mining (Section 5 of the paper).
//
// A recurrent rule pre -> post states: "whenever the series of events pre has
// just occurred at a point in time, eventually the series of events post
// occurs". Rules are evaluated at the temporal points of the premise
// (Definition 5.1): the positions at which the premise has just completed as
// a subsequence of the trace prefix. Three statistics qualify a rule:
//
//   - sequence support (s-support): the number of traces containing the
//     premise;
//   - instance support (i-support): the number of occurrences (temporal
//     points) of pre ++ post across the database;
//   - confidence: the fraction of the premise's temporal points that are
//     followed by the consequent.
//
// MineFull returns every significant rule (the "Full" series of Figures 2–3);
// MineNonRedundant returns the non-redundant set of Definition 5.2 using
// early pruning of redundant premises and consequents (the "NR" series).
package rules

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"specmine/internal/mine"
	"specmine/internal/seqdb"
)

// Options configures a rule mining run.
type Options struct {
	// MinSeqSupport is the absolute minimum s-support (number of sequences
	// containing the premise).
	MinSeqSupport int
	// MinSeqSupportRel, when positive, overrides MinSeqSupport with
	// ceil(rel * number of sequences), matching the relative thresholds on
	// the x-axes of Figures 2 and 3.
	MinSeqSupportRel float64
	// MinInstanceSupport is the minimum i-support (occurrences of
	// pre ++ post). The paper's experiments use 1.
	MinInstanceSupport int
	// MinConfidence is the minimum confidence in (0, 1].
	MinConfidence float64
	// MaxPremiseLength and MaxConsequentLength bound the rule shape;
	// 0 means unlimited.
	MaxPremiseLength    int
	MaxConsequentLength int
	// MaxRules aborts mining after emitting this many rules (0 = unlimited).
	// It is a safety valve for interactive use.
	MaxRules int

	// Workers bounds the worker pool that mines consequent subtrees. The
	// premise tree is always walked sequentially (its redundancy pruning
	// depends on exploration order), collecting one job per surviving premise;
	// jobs then fan out across the pool. 0 and 1 run fully sequentially;
	// negative values use GOMAXPROCS. Results are byte-identical to a
	// sequential run for any worker count. MaxRules > 0 forces sequential
	// mining, because the early-stop cutoff is defined by sequential emission
	// order.
	Workers int
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	if o.MinSeqSupport < 1 && o.MinSeqSupportRel <= 0 {
		return errors.New("rules: MinSeqSupport must be >= 1 or MinSeqSupportRel > 0")
	}
	if o.MinInstanceSupport < 1 {
		return errors.New("rules: MinInstanceSupport must be >= 1")
	}
	if o.MinConfidence <= 0 || o.MinConfidence > 1 {
		return errors.New("rules: MinConfidence must be in (0, 1]")
	}
	if o.MaxPremiseLength < 0 || o.MaxConsequentLength < 0 || o.MaxRules < 0 {
		return errors.New("rules: length and rule bounds must be >= 0")
	}
	return nil
}

// effectiveWorkers resolves the Workers knob to a concrete worker count.
// MaxRules forces sequential mining: its early-stop cutoff is defined by
// sequential emission order.
func (o Options) effectiveWorkers() int {
	if o.MaxRules > 0 {
		return 1
	}
	return mine.EffectiveWorkers(o.Workers)
}

func (o Options) absoluteSeqSupport(numSequences int) int {
	if o.MinSeqSupportRel > 0 {
		n := int(o.MinSeqSupportRel*float64(numSequences) + 0.5)
		if n < 1 {
			n = 1
		}
		return n
	}
	return o.MinSeqSupport
}

// Rule is one mined recurrent rule pre -> post with its statistics.
type Rule struct {
	Pre  seqdb.Pattern
	Post seqdb.Pattern
	// SeqSupport is the number of sequences containing the premise.
	SeqSupport int
	// InstanceSupport is the number of temporal points of pre ++ post.
	InstanceSupport int
	// Confidence is the fraction of the premise's temporal points followed by
	// the consequent.
	Confidence float64
}

// Concat returns pre ++ post, the concatenation used by the redundancy
// definition (Definition 5.2).
func (r Rule) Concat() seqdb.Pattern { return r.Pre.Concat(r.Post) }

// String renders the rule with its statistics.
func (r Rule) String(dict *seqdb.Dictionary) string {
	return fmt.Sprintf("%s -> %s  s-sup=%d i-sup=%d conf=%.3f",
		r.Pre.String(dict), r.Post.String(dict), r.SeqSupport, r.InstanceSupport, r.Confidence)
}

// Key returns a canonical map key for the rule's syntactic identity.
func (r Rule) Key() string {
	return r.Pre.Key() + "=>" + r.Post.Key()
}

// Stats aggregates counters describing a mining run.
type Stats struct {
	// PremisesExplored counts premise search-tree nodes evaluated.
	PremisesExplored int
	// PremisesPrunedRedundant counts premise subtrees skipped by the
	// non-redundant miner's temporal-point equivalence pruning.
	PremisesPrunedRedundant int
	// ConsequentNodesExplored counts consequent search-tree nodes evaluated
	// across all premises.
	ConsequentNodesExplored int
	// RulesSuppressedRedundant counts rules withheld by redundancy checks.
	RulesSuppressedRedundant int
	// RulesEmitted is the number of rules in the result.
	RulesEmitted int
	// Duration is the wall-clock time of the run.
	Duration time.Duration
}

// Result is the outcome of a rule mining run.
type Result struct {
	Rules      []Rule
	Stats      Stats
	MinSeqSup  int
	MinInstSup int
	MinConf    float64
}

// Sort orders the rules by decreasing confidence, then i-support, then
// content, giving deterministic output.
func (r *Result) Sort() {
	sort.Slice(r.Rules, func(i, j int) bool {
		a, b := r.Rules[i], r.Rules[j]
		if a.Confidence != b.Confidence {
			return a.Confidence > b.Confidence
		}
		if a.InstanceSupport != b.InstanceSupport {
			return a.InstanceSupport > b.InstanceSupport
		}
		if c := seqdb.ComparePatterns(a.Pre, b.Pre); c != 0 {
			return c < 0
		}
		return seqdb.ComparePatterns(a.Post, b.Post) < 0
	})
}

// Find returns the mined rule with the given premise and consequent.
func (r *Result) Find(pre, post seqdb.Pattern) (Rule, bool) {
	for _, rule := range r.Rules {
		if rule.Pre.Equal(pre) && rule.Post.Equal(post) {
			return rule, true
		}
	}
	return Rule{}, false
}

// Render writes a human-readable listing of up to limit rules (all when
// limit <= 0).
func (r *Result) Render(dict *seqdb.Dictionary, limit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d rules (min s-sup %d, min i-sup %d, min conf %.0f%%, %v)\n",
		len(r.Rules), r.MinSeqSup, r.MinInstSup, r.MinConf*100, r.Stats.Duration.Round(time.Millisecond))
	n := len(r.Rules)
	if limit > 0 && limit < n {
		n = limit
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  %s\n", r.Rules[i].String(dict))
	}
	if n < len(r.Rules) {
		fmt.Fprintf(&b, "  ... %d more\n", len(r.Rules)-n)
	}
	return b.String()
}

// --- direct (non-incremental) statistics, shared with tests and verifiers ---

// TemporalPoints returns the temporal points of pattern p in sequence s
// (Definition 5.1, 0-based): positions j with s[j] = last(p) and p a
// subsequence of s[0..j].
func TemporalPoints(s seqdb.Sequence, p seqdb.Pattern) []int {
	return s.SubsequenceEndPositions(p)
}

// EvaluateRule computes the statistics of an arbitrary rule directly from the
// database, independent of the miners. It is used by tests, by the verifier
// and by callers that want to score hand-written rules.
func EvaluateRule(db *seqdb.Database, pre, post seqdb.Pattern) Rule {
	rule := Rule{Pre: pre.Clone(), Post: post.Clone()}
	totalTP := 0
	satisfied := 0
	for _, s := range db.Sequences {
		tps := TemporalPoints(s, pre)
		if len(tps) > 0 {
			rule.SeqSupport++
		}
		totalTP += len(tps)
		for _, j := range tps {
			if seqdb.Sequence(s[j+1:]).ContainsSubsequence(post) {
				satisfied++
			}
		}
		rule.InstanceSupport += len(TemporalPoints(s, pre.Concat(post)))
	}
	if totalTP > 0 {
		rule.Confidence = float64(satisfied) / float64(totalTP)
	}
	return rule
}
