package verify

import (
	"specmine/internal/rules"
	"specmine/internal/seqdb"
)

// Indexed (planned) evaluation: the pull-based counterpart of the online
// automaton. The online Checker pays O(events) per trace regardless of which
// rules could possibly fire; the IndexedChecker instead descends the premise
// trie on demand over a PositionIndex, so a planner can decide — per rule,
// per trace, from statistics — how much of the machinery to run at all:
//
//   - ActionSatisfied: some premise event is provably absent, so the rule has
//     zero temporal points on this trace. Only SatisfiedTraces is bumped —
//     exactly Checker.Close's zero-temporal-point path.
//   - ActionShortCircuit: the premise may fire but some consequent event is
//     provably absent, so the consequent cannot embed anywhere (late = -1).
//     Temporal points are still enumerated, but the consequent evaluation is
//     skipped: every temporal point is a violation.
//   - ActionEvaluate: full evaluation through the index.
//
// The evaluation itself reproduces the online automaton's state exactly:
//
//   - first premise-prefix completions by chained NextAfter over the trie
//     (a node's first completion is the first occurrence of its event
//     strictly after its parent's first completion), memoised per node so
//     rules sharing prefixes descend once;
//   - a group's temporal points are the occurrences of its final event
//     strictly after the prefix completion — a subslice of the postings
//     arena, no copying;
//   - a consequent's latest embedding start by a backward PrevBefore greedy,
//     memoised per distinct consequent — equal to the forward DP's
//     latest-embedding entry at trace end.
//
// Reports produced through CheckSeq are byte-identical to feeding the trace
// through Checker.Advance/Close: same counters, same violations in the same
// order. The equivalence suites in the plan package pin this.

// RuleAction tells the indexed checker how much of one rule's machinery to
// run on one trace. The zero value is full evaluation, so a nil action slice
// means "evaluate everything".
type RuleAction uint8

const (
	// ActionEvaluate runs the full indexed evaluation.
	ActionEvaluate RuleAction = iota
	// ActionSatisfied records the trace as trivially satisfied (zero temporal
	// points). Only sound when some premise event does not occur in the trace.
	ActionSatisfied
	// ActionShortCircuit enumerates temporal points but skips the consequent
	// evaluation, treating every temporal point as violated. Only sound when
	// some consequent event does not occur in the trace.
	ActionShortCircuit
)

// IndexedChecker evaluates the engine's rule set over a PositionIndex, one
// trace per CheckSeq call. Not safe for concurrent use; create one per
// goroutine. Scratch is epoch-stamped, so reuse across traces never clears
// arrays.
type IndexedChecker struct {
	e   *Engine
	idx *seqdb.PositionIndex

	epoch     uint32
	g         []int32 // memoised first completion per trie node (epoch-stamped)
	gStamp    []uint32
	late      []int32 // memoised latest embedding start per distinct post
	lateStamp []uint32
	path      []int32 // trie-descent scratch
}

// NewIndexedChecker returns an indexed checker over idx. The index must cover
// the traces CheckSeq is called with; event ids outside the index's space
// simply never occur (their premises cannot complete).
func (e *Engine) NewIndexedChecker(idx *seqdb.PositionIndex) *IndexedChecker {
	return &IndexedChecker{
		e:         e,
		idx:       idx,
		g:         make([]int32, len(e.trieEvent)),
		gStamp:    make([]uint32, len(e.trieEvent)),
		late:      make([]int32, len(e.posts)),
		lateStamp: make([]uint32, len(e.posts)),
	}
}

// SetIndex rebinds the checker to another index — the next segment's fragment
// in an out-of-core sweep. All memoised state is per-trace and invalidated at
// the top of every CheckSeq, so rebinding costs nothing beyond the pointer.
func (c *IndexedChecker) SetIndex(idx *seqdb.PositionIndex) { c.idx = idx }

// CheckSeq evaluates every rule against trace s of the index, folding the
// outcome into reports (from Engine.NewReports) as sequence seq — the two
// differ when s is a segment-local index and seq the global trace ordinal.
// actions must be nil (evaluate everything) or have NumRules entries; the
// soundness conditions on each action are the caller's responsibility (the
// plan package derives them from presence probes and segment statistics).
func (c *IndexedChecker) CheckSeq(s, seq int, actions []RuleAction, reports []RuleReport) {
	e := c.e
	seqdb.BumpEpoch(&c.epoch, c.gStamp, c.lateStamp)
	for r := range e.ruleSet {
		rep := &reports[r]
		action := ActionEvaluate
		if actions != nil {
			action = actions[r]
		}
		if action == ActionSatisfied {
			rep.SatisfiedTraces++
			continue
		}
		var tps []int32
		if pg := c.nodeG(s, e.rulePreNode[r]); pg != notYet {
			tps = c.idx.PositionsFrom(s, e.ruleLast[r], int(pg)+1)
		}
		if len(tps) == 0 {
			rep.SatisfiedTraces++
			continue
		}
		rep.TotalTemporalPoints += len(tps)
		late := int32(-1)
		if action == ActionEvaluate {
			late = c.postLate(s, e.rulePost[r])
		}
		sat := lowerBound(tps, late)
		rep.SatisfiedTemporalPoints += sat
		if sat == len(tps) {
			rep.SatisfiedTraces++
			continue
		}
		rep.ViolatedTraces++
		for _, tp := range tps[sat:] {
			rep.Violations = append(rep.Violations, RuleViolation{
				Rule: e.ruleSet[r], Seq: seq, TemporalPoint: int(tp),
			})
		}
	}
}

// nodeG returns the position at which node's premise prefix first completes
// in trace s (notYet when it never does), memoised for the current trace. The
// first completion of a node is the first occurrence of its event strictly
// after its parent's first completion — completing each prefix event as early
// as possible is what the online automaton's monotone g[] computes.
func (c *IndexedChecker) nodeG(s int, node int32) int32 {
	if node == 0 {
		return -1 // the empty prefix completes before position 0
	}
	e := c.e
	path := c.path[:0]
	n := node
	for n != 0 && c.gStamp[n] != c.epoch {
		path = append(path, n)
		n = e.trieParent[n]
	}
	g := int32(-1)
	if n != 0 {
		g = c.g[n]
	}
	for i := len(path) - 1; i >= 0; i-- {
		n = path[i]
		if g != notYet {
			g = c.idx.NextAfter(s, e.trieEvent[n], int(g)+1)
			if g < 0 {
				g = notYet
			}
		}
		c.g[n] = g
		c.gStamp[n] = c.epoch
	}
	c.path = path[:0]
	return g
}

// postLate returns the latest position from which distinct consequent pi
// embeds into trace s, or -1 when it does not embed, memoised for the current
// trace. Matching the consequent backwards — each event as late as possible —
// yields the latest start, which is the value the online DP's full-length
// entry holds at trace end.
func (c *IndexedChecker) postLate(s int, pi int32) int32 {
	if c.lateStamp[pi] == c.epoch {
		return c.late[pi]
	}
	post := c.e.posts[pi]
	q := int32(c.idx.SeqLen(s))
	for j := len(post) - 1; j >= 0 && q >= 0; j-- {
		q = c.idx.PrevBefore(s, post[j], int(q))
	}
	c.late[pi] = q
	c.lateStamp[pi] = c.epoch
	return q
}

// CheckIndexed evaluates every rule against every trace of db through the
// indexed path with no gating — byte-identical to Check, trading the
// event-by-event scan for index probes. The planner's gated entry points in
// the plan package build on the same machinery.
func (e *Engine) CheckIndexed(db *seqdb.Database) []RuleReport {
	reports := e.NewReports()
	c := e.NewIndexedChecker(db.FlatIndex())
	for si := range db.Sequences {
		c.CheckSeq(si, si, nil, reports)
	}
	return reports
}

// Rule returns compiled rule i. Together with RuleGroup and RulePost it lets
// a planner derive probe sets without re-walking the trie.
func (e *Engine) Rule(i int) rules.Rule { return e.ruleSet[i] }

// RuleGroup returns the premise group of rule i: rules in one group share
// their whole premise, hence their temporal points.
func (e *Engine) RuleGroup(i int) int { return int(e.ruleGroup[i]) }

// RulePost returns the index of rule i's consequent among the engine's
// distinct consequents.
func (e *Engine) RulePost(i int) int { return int(e.rulePost[i]) }
