package verify

import "specmine/internal/seqdb"

// Out-of-core checking support: segment-level skip decisions driven by
// per-segment event statistics.
//
// A rule accumulates temporal points on a trace only if its full premise
// embeds, which requires every premise event to occur. When some premise
// event provably never occurs anywhere in a segment, no trace in the segment
// produces a temporal point for that rule, and Close's zero-temporal-point
// path does exactly one thing per trace: SatisfiedTraces++. If that holds for
// EVERY rule in the engine, the whole segment can be answered without
// decoding its body — AccountSkippedTraces applies the per-trace effect in
// bulk.

// SegmentSkippable reports whether a segment whose event population is
// described by mayContain can be skipped: for every rule, at least one
// premise event is absent. mayContain may overapproximate (bloom filters,
// merged stats); a false positive only loses the skip, never correctness.
func (e *Engine) SegmentSkippable(mayContain func(seqdb.EventID) bool) bool {
	for r := range e.ruleSet {
		if !e.PremiseMayOccur(r, mayContain) {
			continue // some premise event absent: rule r is trivially satisfied
		}
		return false
	}
	return true
}

// PremiseMayOccur reports whether every premise event of rule r may occur
// according to mayContain. The premise is ruleLast[r] plus the trie-prefix
// chain from rulePreNode[r] up to (excluding) the root. When it returns
// false the rule is trivially satisfied on every trace mayContain describes —
// the per-rule refinement of SegmentSkippable the planner gates on.
func (e *Engine) PremiseMayOccur(r int, mayContain func(seqdb.EventID) bool) bool {
	if !mayContain(e.ruleLast[r]) {
		return false
	}
	for n := e.rulePreNode[r]; n != 0; n = e.trieParent[n] {
		if !mayContain(e.trieEvent[n]) {
			return false
		}
	}
	return true
}

// ConsequentMayOccur reports whether every consequent event of rule r may
// occur according to mayContain. When it returns false the consequent cannot
// embed in any described trace, so every temporal point of rule r is violated
// without running the consequent machinery (ActionShortCircuit).
func (e *Engine) ConsequentMayOccur(r int, mayContain func(seqdb.EventID) bool) bool {
	for _, ev := range e.posts[e.rulePost[r]] {
		if !mayContain(ev) {
			return false
		}
	}
	return true
}

// AccountSkippedTraces folds n skipped traces into reports: each trace
// satisfies every rule with zero temporal points, which is precisely what
// Checker.Close records for a trace none of whose rules' premises complete.
func AccountSkippedTraces(reports []RuleReport, n int) {
	for i := range reports {
		reports[i].SatisfiedTraces += n
	}
}
