package verify

import "specmine/internal/obs"

// Metrics counts the work a verification pass performed and — more
// importantly — the work statistics let it avoid. Before the planner these
// counters existed only as test-local bookkeeping (segment-skip rates
// recomputed from OutOfCoreStats); they are now a first-class struct so the
// core facade can surface them per query, Streamer.Health-style. All fields
// are plain counters: merge runs with Merge, read them directly.
type Metrics struct {
	// TracesChecked counts traces at least one of whose rules was actually
	// evaluated; TracesSkipped counts traces answered from presence probes
	// alone (every rule gated — the per-trace analogue of a skipped segment).
	TracesChecked int64
	TracesSkipped int64

	// SegmentsChecked / SegmentsSkipped count segment bodies decoded versus
	// answered from per-segment statistics alone (SegmentSkippable hits).
	// Zero outside out-of-core runs.
	SegmentsChecked int64
	SegmentsSkipped int64

	// RuleTraceGates counts (rule, trace) pairs answered "trivially satisfied"
	// because a premise event was proven absent — the per-rule, per-trace
	// refinement of the all-or-nothing segment skip.
	RuleTraceGates int64

	// ConsequentShortCircuits counts (rule, trace) pairs whose consequent
	// machinery never ran because a consequent event was proven absent (the
	// rule's temporal points, if any, are all violated without a DP pass).
	ConsequentShortCircuits int64

	// ProbesIssued counts event-presence probes (index or statistics lookups)
	// the gating layer paid for. The planner's rarest-first probe ordering
	// exists to keep this low; a regression shows up here first.
	ProbesIssued int64
}

// Publish folds the pass's counters into the registry's cumulative verify.*
// series (verify.traces_checked, verify.traces_skipped,
// verify.segments_checked, verify.segments_skipped, verify.rule_trace_gates,
// verify.consequent_short_circuits, verify.probes_issued). Per-query values
// stay on the struct; the registry accumulates across queries. A nil registry
// is a no-op, but a non-nil one registers every series even when the pass did
// no work, so scrapes see a stable schema.
func (m Metrics) Publish(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Counter("verify.traces_checked").Add(m.TracesChecked)
	r.Counter("verify.traces_skipped").Add(m.TracesSkipped)
	r.Counter("verify.segments_checked").Add(m.SegmentsChecked)
	r.Counter("verify.segments_skipped").Add(m.SegmentsSkipped)
	r.Counter("verify.rule_trace_gates").Add(m.RuleTraceGates)
	r.Counter("verify.consequent_short_circuits").Add(m.ConsequentShortCircuits)
	r.Counter("verify.probes_issued").Add(m.ProbesIssued)
}

// Merge folds o into m.
func (m *Metrics) Merge(o Metrics) {
	m.TracesChecked += o.TracesChecked
	m.TracesSkipped += o.TracesSkipped
	m.SegmentsChecked += o.SegmentsChecked
	m.SegmentsSkipped += o.SegmentsSkipped
	m.RuleTraceGates += o.RuleTraceGates
	m.ConsequentShortCircuits += o.ConsequentShortCircuits
	m.ProbesIssued += o.ProbesIssued
}
