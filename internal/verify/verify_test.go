package verify

import (
	"strings"
	"testing"

	"specmine/internal/rules"
	"specmine/internal/seqdb"
)

func mkdb(traces ...[]string) *seqdb.Database {
	db := seqdb.NewDatabase()
	for _, t := range traces {
		db.AppendNames(t...)
	}
	return db
}

func lockRule(db *seqdb.Database) rules.Rule {
	return rules.Rule{
		Pre:  seqdb.ParsePattern(db.Dict, "lock"),
		Post: seqdb.ParsePattern(db.Dict, "unlock"),
	}
}

func TestCheckRuleFindsViolations(t *testing.T) {
	db := mkdb(
		[]string{"lock", "use", "unlock"},
		[]string{"lock", "use"},            // violation at position 0
		[]string{"lock", "unlock", "lock"}, // violation at position 2
		[]string{"idle"},
	)
	rep, err := CheckRule(db, lockRule(db))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalTemporalPoints != 4 {
		t.Errorf("TotalTemporalPoints=%d want 4", rep.TotalTemporalPoints)
	}
	if rep.SatisfiedTemporalPoints != 2 {
		t.Errorf("SatisfiedTemporalPoints=%d want 2", rep.SatisfiedTemporalPoints)
	}
	if len(rep.Violations) != 2 {
		t.Fatalf("violations=%d want 2", len(rep.Violations))
	}
	if rep.Violations[0].Seq != 1 || rep.Violations[0].TemporalPoint != 0 {
		t.Errorf("first violation wrong: %+v", rep.Violations[0])
	}
	if rep.Violations[1].Seq != 2 || rep.Violations[1].TemporalPoint != 2 {
		t.Errorf("second violation wrong: %+v", rep.Violations[1])
	}
	if rep.SatisfiedTraces != 2 || rep.ViolatedTraces != 2 {
		t.Errorf("trace counts wrong: sat=%d vio=%d", rep.SatisfiedTraces, rep.ViolatedTraces)
	}
	if rep.HoldRate() != 0.5 {
		t.Errorf("HoldRate=%v want 0.5", rep.HoldRate())
	}
	if rep.Formula == nil {
		t.Errorf("formula not attached")
	}
	if s := rep.Violations[0].String(db.Dict); !strings.Contains(s, "trace 1") {
		t.Errorf("violation rendering wrong: %q", s)
	}
}

func TestCheckRuleVacuousHoldRate(t *testing.T) {
	db := mkdb([]string{"idle", "idle"})
	rep, err := CheckRule(db, lockRule(db))
	if err != nil {
		t.Fatal(err)
	}
	if rep.HoldRate() != 1.0 {
		t.Errorf("vacuous hold rate should be 1.0, got %v", rep.HoldRate())
	}
	if rep.ViolatedTraces != 0 || rep.SatisfiedTraces != 1 {
		t.Errorf("trace counts wrong: %+v", rep)
	}
}

func TestCheckRuleRejectsEmptySides(t *testing.T) {
	db := mkdb([]string{"a"})
	if _, err := CheckRule(db, rules.Rule{}); err == nil {
		t.Errorf("empty rule accepted")
	}
	if _, err := CheckRules(db, []rules.Rule{{}}); err == nil {
		t.Errorf("CheckRules accepted empty rule")
	}
}

func TestCheckRulesAndSummary(t *testing.T) {
	db := mkdb(
		[]string{"lock", "unlock", "open", "close"},
		[]string{"lock", "open"},
		[]string{"open", "close"},
	)
	ruleSet := []rules.Rule{
		lockRule(db),
		{Pre: seqdb.ParsePattern(db.Dict, "open"), Post: seqdb.ParsePattern(db.Dict, "close")},
	}
	reports, err := CheckRules(db, ruleSet)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports=%d", len(reports))
	}
	sum := NewSummary(reports)
	if sum.TotalViolations() != 2 {
		t.Errorf("TotalViolations=%d want 2", sum.TotalViolations())
	}
	// Most violated rule first: both have 1 violation, order stable.
	text := sum.Render(db.Dict, 1)
	if !strings.Contains(text, "conformance summary: 2 rules checked, 2 violations") {
		t.Errorf("summary header wrong:\n%s", text)
	}
	if !strings.Contains(text, "hold rate") {
		t.Errorf("summary missing hold rate:\n%s", text)
	}
}

func TestSummaryOrdering(t *testing.T) {
	db := mkdb(
		[]string{"a", "a", "a"},
		[]string{"b", "c"},
	)
	often := rules.Rule{Pre: seqdb.ParsePattern(db.Dict, "a"), Post: seqdb.ParsePattern(db.Dict, "z")}
	rarely := rules.Rule{Pre: seqdb.ParsePattern(db.Dict, "b"), Post: seqdb.ParsePattern(db.Dict, "z")}
	reports, err := CheckRules(db, []rules.Rule{rarely, often})
	if err != nil {
		t.Fatal(err)
	}
	sum := NewSummary(reports)
	if len(sum.Reports[0].Violations) < len(sum.Reports[1].Violations) {
		t.Errorf("summary not sorted by violations")
	}
}

func TestCheckPattern(t *testing.T) {
	db := mkdb(
		[]string{"open", "read", "close", "open", "read"},
		[]string{"open", "close"},
		[]string{"noise"},
	)
	p := seqdb.ParsePattern(db.Dict, "open read close")
	rep := CheckPattern(db, p)
	if rep.Instances != 1 {
		t.Errorf("Instances=%d want 1", rep.Instances)
	}
	if rep.Sequences != 1 {
		t.Errorf("Sequences=%d want 1", rep.Sequences)
	}
	// The second <open, read> in trace 0 matches 2 of 3 events and stops:
	// a partial match. Trace 1's <open, close> matches only 1 event (open)
	// before the alphabet event close breaks it, below the half threshold...
	// actually 1 of 3 < 2, so only one partial match is reported.
	if rep.PartialMatches != 1 {
		t.Errorf("PartialMatches=%d want 1", rep.PartialMatches)
	}
	empty := CheckPattern(db, nil)
	if empty.Instances != 0 || empty.PartialMatches != 0 {
		t.Errorf("empty pattern should produce an empty report")
	}
}
