package verify

import "specmine/internal/seqdb"

// Checker is the online conformance automaton for one trace: events are fed
// one at a time with Advance, and Close finalises the trace, folding its
// outcome into a report slice. It evaluates the same compiled rule set as
// Engine.Check — which is a thin driver over this path — but requires
// neither the whole trace nor a positional index up front, so conformance is
// tracked as traffic arrives.
//
// The per-trace state is NFA-like over the engine's shared structures:
//
//   - g[node] is the position at which the premise prefix of a trie node
//     first completed (notYet until it does). An arriving event can only
//     complete nodes labelled with it, found through an event-keyed CSR.
//   - For each distinct consequent <p1..pk>, postState tracks, per prefix
//     length j, the latest position from which p1..pj embeds into the trace
//     seen so far. An arriving event pj can only improve state j from state
//     j-1; entries are visited in descending j so one event never chains two
//     steps. The full-pattern entry equals the "latest embedding start" the
//     batched PR 2 engine computed backwards over the index.
//   - Each occurrence of a premise group's final event after its prefix
//     completion is a temporal point, recorded once per group — rules
//     sharing a whole premise (thousands do in mined rule sets, differing
//     only in consequent) share the list. At Close, a rule's satisfied
//     temporal points are exactly those below its consequent's latest
//     embedding start (satisfaction is monotone), found by binary search —
//     the same split the batched engine performed per rule.
//
// A Checker is not safe for concurrent use; create one per goroutine (they
// all share the immutable engine). Close resets the checker, so one checker
// serves any number of traces in sequence without further allocation.
type Checker struct {
	e   *Engine
	pos int32

	g         []int32   // first-completion position per trie node
	postState []int32   // flattened latest-embedding-start DP, -1 = none
	groupTps  [][]int32 // temporal points per premise group, ascending
}

// notYet marks a trie node whose premise prefix has not completed yet (and,
// at Close, one that never did — a premise that cannot fire). The root uses
// -1 ("completes before position 0"), so the marker must be distinct.
const notYet = int32(-2)

// NewChecker returns a fresh online checker for the engine's rule set.
func (e *Engine) NewChecker() *Checker {
	c := &Checker{
		e:         e,
		g:         make([]int32, len(e.trieEvent)),
		postState: make([]int32, e.postStates),
		groupTps:  make([][]int32, len(e.groupPreNode)),
	}
	c.Reset()
	return c
}

// Reset discards the current trace's state, making the checker ready for the
// next trace. Close calls it implicitly.
func (c *Checker) Reset() {
	c.pos = 0
	c.g[0] = -1
	for i := 1; i < len(c.g); i++ {
		c.g[i] = notYet
	}
	for i := range c.postState {
		c.postState[i] = -1
	}
	for i := range c.groupTps {
		c.groupTps[i] = c.groupTps[i][:0]
	}
}

// Events returns the number of events consumed since the last Reset.
func (c *Checker) Events() int { return int(c.pos) }

// Unresolved returns the number of (rule, temporal point) pairs whose
// outcome is still open: each will either turn satisfied when its rule's
// consequent completes once more, or surface as a violation at Close.
func (c *Checker) Unresolved() int {
	n := 0
	for r := range c.e.ruleSet {
		tps := c.groupTps[c.e.ruleGroup[r]]
		n += len(tps) - lowerBound(tps, c.late(r))
	}
	return n
}

// late returns the latest position from which rule r's consequent embeds
// into the trace seen so far, or -1 when it does not embed at all. A
// temporal point tp is satisfied exactly when tp < late: the consequent then
// embeds entirely within s[tp+1:].
func (c *Checker) late(r int) int32 {
	e := c.e
	pi := e.rulePost[r]
	return c.postState[e.postStateOff[pi+1]-1]
}

// Advance feeds the next event of the current trace.
func (c *Checker) Advance(ev seqdb.EventID) {
	p := c.pos
	c.pos++
	e := c.e
	if ev < 0 || int(ev) >= e.alphabet {
		return
	}

	// Premise-prefix completions. Node ids ascend within the list, so a
	// parent completing at p is seen before its children, and the strict
	// pg < p guard keeps a child from consuming the same occurrence.
	for _, n := range e.nodesByEvent[e.nodesOff[ev]:e.nodesOff[ev+1]] {
		if c.g[n] == notYet {
			pg := c.g[e.trieParent[n]]
			if pg != notYet && pg < p {
				c.g[n] = p
			}
		}
	}

	// Latest-embedding DP for the distinct consequents (descending j per
	// post, so this occurrence extends at most one step per chain).
	for i := e.stepsOff[ev]; i < e.stepsOff[ev+1]; i++ {
		base := e.postStateOff[e.stepPost[i]]
		j := e.stepJ[i]
		if j == 0 {
			c.postState[base] = p
		} else if s := c.postState[base+j-1]; s >= 0 {
			c.postState[base+j] = s
		}
	}

	// New temporal points: premise groups whose final event this is, with
	// the prefix completed strictly earlier.
	for _, grp := range e.groupsByLast[e.groupsOff[ev]:e.groupsOff[ev+1]] {
		pg := c.g[e.groupPreNode[grp]]
		if pg != notYet && pg < p {
			c.groupTps[grp] = append(c.groupTps[grp], p)
		}
	}
}

// Close finalises the current trace as sequence seq: every rule's counters
// are folded into reports (which must come from Engine.NewReports or have
// len equal to NumRules), violations are appended in ascending temporal
// point order, and the checker resets for the next trace.
func (c *Checker) Close(seq int, reports []RuleReport) {
	e := c.e
	for r := range e.ruleSet {
		tps := c.groupTps[e.ruleGroup[r]]
		rep := &reports[r]
		if len(tps) == 0 {
			rep.SatisfiedTraces++
			continue
		}
		rep.TotalTemporalPoints += len(tps)
		sat := lowerBound(tps, c.late(r))
		rep.SatisfiedTemporalPoints += sat
		if sat == len(tps) {
			rep.SatisfiedTraces++
			continue
		}
		rep.ViolatedTraces++
		for _, tp := range tps[sat:] {
			rep.Violations = append(rep.Violations, RuleViolation{
				Rule: e.ruleSet[r], Seq: seq, TemporalPoint: int(tp),
			})
		}
	}
	c.Reset()
}

// lowerBound returns the number of entries in sorted that are < limit. The
// halving loop is branch-free in its data-dependent comparison (a conditional
// add the compiler lowers to CMOV), matching the seqdb postings probes.
func lowerBound(sorted []int32, limit int32) int {
	base, n := 0, len(sorted)
	for n > 1 {
		half := n >> 1
		if sorted[base+half-1] < limit {
			base += half
		}
		n -= half
	}
	if n == 1 && sorted[base] < limit {
		base++
	}
	return base
}
