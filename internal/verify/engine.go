package verify

import (
	"specmine/internal/ltl"
	"specmine/internal/rules"
	"specmine/internal/seqdb"
)

// Engine is a rule set compiled for batched conformance checking: the
// serving path for checking fresh traffic against a mined specification.
// CheckRule walks every trace once per rule; a production rule set has
// hundreds of rules sharing a handful of premise prefixes and consequents,
// so the engine compiles the whole set once — premises into a shared prefix
// trie, consequents into a deduplicated table — and then answers all rules
// in a single pass per trace over the flat positional index.
//
// Compile once with NewEngine, then call Check against any number of
// databases. The engine is immutable after compilation and safe for
// concurrent Check calls; each call allocates its own scratch.
type Engine struct {
	ruleSet  []rules.Rule
	formulas []ltl.Formula

	// Premise-prefix trie. Node 0 is the root (empty prefix); children carry
	// the event extending their parent's prefix. Nodes are stored in
	// insertion order, so every parent precedes its children and one forward
	// sweep evaluates the whole trie.
	trieEvent  []seqdb.EventID
	trieParent []int32

	// posts holds the distinct consequents of the rule set.
	posts []seqdb.Pattern

	// Per rule: the trie node of its premise prefix (pre minus the last
	// event), the premise's last event, and its consequent's index in posts.
	rulePreNode []int32
	ruleLast    []seqdb.EventID
	rulePost    []int32
}

// NewEngine compiles a rule set. Rules are validated (via their LTL
// translation, like CheckRule) in order, so the first invalid rule produces
// the same error the per-rule path would.
func NewEngine(ruleSet []rules.Rule) (*Engine, error) {
	e := &Engine{
		ruleSet:     ruleSet,
		formulas:    make([]ltl.Formula, len(ruleSet)),
		trieEvent:   []seqdb.EventID{0},
		trieParent:  []int32{-1},
		rulePreNode: make([]int32, len(ruleSet)),
		ruleLast:    make([]seqdb.EventID, len(ruleSet)),
		rulePost:    make([]int32, len(ruleSet)),
	}
	// children[node] maps extending events to child nodes during compilation.
	children := []map[seqdb.EventID]int32{nil}
	postIndex := make(map[string]int32)
	for i, r := range ruleSet {
		formula, err := ltl.FromRule(r.Pre, r.Post)
		if err != nil {
			return nil, err
		}
		e.formulas[i] = formula

		node := int32(0)
		for _, ev := range r.Pre[:len(r.Pre)-1] {
			if children[node] == nil {
				children[node] = make(map[seqdb.EventID]int32, 2)
			}
			child, ok := children[node][ev]
			if !ok {
				child = int32(len(e.trieEvent))
				e.trieEvent = append(e.trieEvent, ev)
				e.trieParent = append(e.trieParent, node)
				children = append(children, nil)
				children[node][ev] = child
			}
			node = child
		}
		e.rulePreNode[i] = node
		e.ruleLast[i] = r.Pre.Last()

		key := r.Post.Key()
		pi, ok := postIndex[key]
		if !ok {
			pi = int32(len(e.posts))
			e.posts = append(e.posts, r.Post)
			postIndex[key] = pi
		}
		e.rulePost[i] = pi
	}
	return e, nil
}

// NumTrieNodes reports the size of the compiled premise trie (including the
// root); with shared prefixes it is at most 1 + sum of premise lengths.
func (e *Engine) NumTrieNodes() int { return len(e.trieEvent) }

// NumDistinctPosts reports the number of deduplicated consequents.
func (e *Engine) NumDistinctPosts() int { return len(e.posts) }

// trieDead marks a trie node whose prefix does not embed in the current
// trace. The root uses -1 ("completes before position 0"), so the dead
// sentinel must be distinct.
const trieDead = int32(-2)

// Check evaluates every compiled rule against every trace of db and returns
// one report per rule, in rule order — byte-identical to calling CheckRule
// per rule, but in one pass per trace.
//
// Per trace the engine computes, in one forward sweep over the trie, the
// position at which each premise prefix first completes (one NextAfter index
// query per node); a premise's temporal points are then exactly the
// occurrences of its last event after that position, read straight off the
// index. Satisfaction is monotone — if the consequent follows one temporal
// point it follows every earlier one — so one backward embedding per
// distinct consequent (PrevBefore queries) yields the latest start position
// from which it still embeds, and a binary search splits each rule's
// temporal points into satisfied and violated.
func (e *Engine) Check(db *seqdb.Database) []RuleReport {
	idx := db.FlatIndex()
	reports := make([]RuleReport, len(e.ruleSet))
	for i := range reports {
		reports[i] = RuleReport{Rule: e.ruleSet[i], Formula: e.formulas[i]}
	}
	g := make([]int32, len(e.trieEvent))
	late := make([]int32, len(e.posts))

	for si := range db.Sequences {
		// First-completion position of every premise prefix.
		g[0] = -1
		for n := 1; n < len(g); n++ {
			pg := g[e.trieParent[n]]
			if pg == trieDead {
				g[n] = trieDead
				continue
			}
			p := idx.NextAfter(si, e.trieEvent[n], int(pg)+1)
			if p < 0 {
				g[n] = trieDead
			} else {
				g[n] = p
			}
		}
		// Latest start from which each distinct consequent still embeds
		// (-1 when it does not embed at all).
		for pi, post := range e.posts {
			pos := int32(len(db.Sequences[si]))
			for k := len(post) - 1; k >= 0; k-- {
				pos = idx.PrevBefore(si, post[k], int(pos))
				if pos < 0 {
					break
				}
			}
			late[pi] = pos
		}

		for i := range e.ruleSet {
			rep := &reports[i]
			pg := g[e.rulePreNode[i]]
			if pg == trieDead {
				rep.SatisfiedTraces++
				continue
			}
			tps := idx.PositionsFrom(si, e.ruleLast[i], int(pg)+1)
			if len(tps) == 0 {
				rep.SatisfiedTraces++
				continue
			}
			rep.TotalTemporalPoints += len(tps)
			// A temporal point tp is satisfied iff the consequent embeds in
			// s[tp+1:], i.e. iff tp+1 <= late, i.e. tp < late.
			sat := lowerBound(tps, late[e.rulePost[i]])
			rep.SatisfiedTemporalPoints += sat
			if sat == len(tps) {
				rep.SatisfiedTraces++
				continue
			}
			rep.ViolatedTraces++
			for _, tp := range tps[sat:] {
				rep.Violations = append(rep.Violations, RuleViolation{
					Rule: e.ruleSet[i], Seq: si, TemporalPoint: int(tp),
				})
			}
		}
	}
	return reports
}

// lowerBound returns the number of entries in sorted that are < limit.
func lowerBound(sorted []int32, limit int32) int {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sorted[mid] < limit {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
