package verify

import (
	"specmine/internal/ltl"
	"specmine/internal/rules"
	"specmine/internal/seqdb"
)

// Engine is a rule set compiled for conformance checking: the serving path
// for checking fresh traffic against a mined specification. CheckRule walks
// every trace once per rule; a production rule set has hundreds of rules
// sharing a handful of premise prefixes and consequents, so the engine
// compiles the whole set once — premises into a shared prefix trie,
// consequents into a deduplicated table, plus event-keyed dispatch lists —
// and then answers all rules in a single pass over each trace.
//
// Compile once with NewEngine, then either batch-check whole databases with
// Check, or feed live traces event by event through NewChecker (see
// online.go; Check itself is a thin driver over that path). The engine is
// immutable after compilation and safe for concurrent use; each Check call
// and each Checker owns its scratch.
type Engine struct {
	ruleSet  []rules.Rule
	formulas []ltl.Formula

	// Premise-prefix trie. Node 0 is the root (empty prefix); children carry
	// the event extending their parent's prefix. Nodes are stored in
	// insertion order, so every parent precedes its children.
	trieEvent  []seqdb.EventID
	trieParent []int32

	// posts holds the distinct consequents of the rule set; post pi's online
	// DP state occupies postState[postStateOff[pi]:postStateOff[pi+1]].
	posts        []seqdb.Pattern
	postStateOff []int32
	postStates   int

	// Per rule: the trie node of its premise prefix (pre minus the last
	// event), the premise's last event, and its consequent's index in posts.
	rulePreNode []int32
	ruleLast    []seqdb.EventID
	rulePost    []int32

	// Premise groups: rules sharing a whole premise — prefix trie node plus
	// final event — share one temporal-point stream. Mined rule sets have
	// orders of magnitude fewer groups than rules, so the online automaton
	// dispatches per group and only fans out to rules at trace close.
	ruleGroup    []int32
	groupPreNode []int32

	// Event-keyed dispatch CSRs for the online automaton. alphabet bounds the
	// event ids referenced by the rule set; events outside it are no-ops.
	alphabet     int
	nodesByEvent []int32 // trie nodes labelled with the event, id-ascending
	nodesOff     []int32
	stepPost     []int32 // consequent DP steps: post index and position j,
	stepJ        []int32 // descending j within each post
	stepsOff     []int32
	groupsByLast []int32 // premise groups whose final event this is
	groupsOff    []int32
}

// NewEngine compiles a rule set. Rules are validated (via their LTL
// translation, like CheckRule) in order, so the first invalid rule produces
// the same error the per-rule path would.
func NewEngine(ruleSet []rules.Rule) (*Engine, error) {
	e := &Engine{
		ruleSet:     ruleSet,
		formulas:    make([]ltl.Formula, len(ruleSet)),
		trieEvent:   []seqdb.EventID{0},
		trieParent:  []int32{-1},
		rulePreNode: make([]int32, len(ruleSet)),
		ruleLast:    make([]seqdb.EventID, len(ruleSet)),
		rulePost:    make([]int32, len(ruleSet)),
	}
	// children[node] maps extending events to child nodes during compilation.
	children := []map[seqdb.EventID]int32{nil}
	postIndex := make(map[string]int32)
	for i, r := range ruleSet {
		formula, err := ltl.FromRule(r.Pre, r.Post)
		if err != nil {
			return nil, err
		}
		e.formulas[i] = formula

		node := int32(0)
		for _, ev := range r.Pre[:len(r.Pre)-1] {
			if children[node] == nil {
				children[node] = make(map[seqdb.EventID]int32, 2)
			}
			child, ok := children[node][ev]
			if !ok {
				child = int32(len(e.trieEvent))
				e.trieEvent = append(e.trieEvent, ev)
				e.trieParent = append(e.trieParent, node)
				children = append(children, nil)
				children[node][ev] = child
			}
			node = child
		}
		e.rulePreNode[i] = node
		e.ruleLast[i] = r.Pre.Last()

		key := r.Post.Key()
		pi, ok := postIndex[key]
		if !ok {
			pi = int32(len(e.posts))
			e.posts = append(e.posts, r.Post)
			postIndex[key] = pi
		}
		e.rulePost[i] = pi
	}
	e.compileDispatch()
	return e, nil
}

// compileDispatch builds the premise groups, the event-keyed CSR lists the
// online automaton dispatches on, and the flattened consequent DP layout.
func (e *Engine) compileDispatch() {
	e.postStateOff = make([]int32, len(e.posts)+1)
	for pi, post := range e.posts {
		e.postStateOff[pi+1] = e.postStateOff[pi] + int32(len(post))
	}
	e.postStates = int(e.postStateOff[len(e.posts)])

	// Premise groups: one per distinct (prefix node, final event) pair.
	type preKey struct {
		node int32
		last seqdb.EventID
	}
	groupIndex := make(map[preKey]int32)
	e.ruleGroup = make([]int32, len(e.ruleSet))
	var groupLast []seqdb.EventID
	for i := range e.ruleSet {
		key := preKey{e.rulePreNode[i], e.ruleLast[i]}
		grp, ok := groupIndex[key]
		if !ok {
			grp = int32(len(e.groupPreNode))
			groupIndex[key] = grp
			e.groupPreNode = append(e.groupPreNode, key.node)
			groupLast = append(groupLast, key.last)
		}
		e.ruleGroup[i] = grp
	}

	maxEv := seqdb.EventID(-1)
	for _, ev := range e.trieEvent[1:] {
		if ev > maxEv {
			maxEv = ev
		}
	}
	for _, ev := range e.ruleLast {
		if ev > maxEv {
			maxEv = ev
		}
	}
	for _, post := range e.posts {
		for _, ev := range post {
			if ev > maxEv {
				maxEv = ev
			}
		}
	}
	e.alphabet = int(maxEv) + 1

	counts := make([]int32, e.alphabet)
	fillCSR := func(n int, eventOf func(k int) seqdb.EventID, emit func(k int, at int32)) (off []int32) {
		clear(counts)
		for k := 0; k < n; k++ {
			counts[eventOf(k)]++
		}
		off = make([]int32, e.alphabet+1)
		for ev := 0; ev < e.alphabet; ev++ {
			off[ev+1] = off[ev] + counts[ev]
		}
		cursor := make([]int32, e.alphabet)
		copy(cursor, off[:e.alphabet])
		for k := 0; k < n; k++ {
			ev := eventOf(k)
			emit(k, cursor[ev])
			cursor[ev]++
		}
		return off
	}

	// Trie nodes (excluding the root), in ascending node id so parents come
	// before children within one event's list.
	e.nodesByEvent = make([]int32, len(e.trieEvent)-1)
	e.nodesOff = fillCSR(len(e.trieEvent)-1,
		func(k int) seqdb.EventID { return e.trieEvent[k+1] },
		func(k int, at int32) { e.nodesByEvent[at] = int32(k + 1) })

	// Consequent DP steps, enumerated per post with descending j.
	type step struct {
		post, j int32
	}
	var steps []step
	for pi, post := range e.posts {
		for j := len(post) - 1; j >= 0; j-- {
			steps = append(steps, step{int32(pi), int32(j)})
		}
	}
	e.stepPost = make([]int32, len(steps))
	e.stepJ = make([]int32, len(steps))
	e.stepsOff = fillCSR(len(steps),
		func(k int) seqdb.EventID { return e.posts[steps[k].post][steps[k].j] },
		func(k int, at int32) { e.stepPost[at], e.stepJ[at] = steps[k].post, steps[k].j })

	// Premise groups keyed by their final event, id-ascending.
	e.groupsByLast = make([]int32, len(e.groupPreNode))
	e.groupsOff = fillCSR(len(e.groupPreNode),
		func(k int) seqdb.EventID { return groupLast[k] },
		func(k int, at int32) { e.groupsByLast[at] = int32(k) })
}

// NumPremiseGroups reports the number of distinct whole premises (prefix
// plus final event) across the rule set.
func (e *Engine) NumPremiseGroups() int { return len(e.groupPreNode) }

// NumRules reports the number of compiled rules.
func (e *Engine) NumRules() int { return len(e.ruleSet) }

// NumTrieNodes reports the size of the compiled premise trie (including the
// root); with shared prefixes it is at most 1 + sum of premise lengths.
func (e *Engine) NumTrieNodes() int { return len(e.trieEvent) }

// NumDistinctPosts reports the number of deduplicated consequents.
func (e *Engine) NumDistinctPosts() int { return len(e.posts) }

// NewReports returns a report slice initialised for the engine's rules, in
// rule order, ready to accumulate Checker.Close outcomes across traces.
func (e *Engine) NewReports() []RuleReport {
	reports := make([]RuleReport, len(e.ruleSet))
	for i := range reports {
		reports[i] = RuleReport{Rule: e.ruleSet[i], Formula: e.formulas[i]}
	}
	return reports
}

// Check evaluates every compiled rule against every trace of db and returns
// one report per rule, in rule order — byte-identical to calling CheckRule
// per rule. It is a thin driver over the online path: one Checker consumes
// each trace event by event, so batch and streaming verification cannot
// drift apart.
func (e *Engine) Check(db *seqdb.Database) []RuleReport {
	reports := e.NewReports()
	c := e.NewChecker()
	for si, s := range db.Sequences {
		for _, ev := range s {
			c.Advance(ev)
		}
		c.Close(si, reports)
	}
	return reports
}
