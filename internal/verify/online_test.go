package verify

import (
	"math/rand"
	"testing"

	"specmine/internal/rules"
	"specmine/internal/seqdb"
	"specmine/internal/synth"
	"specmine/internal/tracesim"
)

// checkOnlineMatchesBatch feeds every trace through a single reused Checker,
// event by event, and asserts the accumulated reports and summary are
// identical to the batch CheckRules result.
func checkOnlineMatchesBatch(t *testing.T, label string, db *seqdb.Database, ruleSet []rules.Rule) {
	t.Helper()
	engine, err := NewEngine(ruleSet)
	if err != nil {
		t.Fatalf("%s: NewEngine: %v", label, err)
	}
	online := engine.NewReports()
	c := engine.NewChecker()
	for si, s := range db.Sequences {
		for _, ev := range s {
			c.Advance(ev)
		}
		if c.Events() != len(s) {
			t.Fatalf("%s: checker consumed %d events want %d", label, c.Events(), len(s))
		}
		c.Close(si, online)
	}

	batch, err := CheckRules(db, ruleSet)
	if err != nil {
		t.Fatalf("%s: CheckRules: %v", label, err)
	}
	if len(online) != len(batch) {
		t.Fatalf("%s: %d online reports want %d", label, len(online), len(batch))
	}
	for i := range batch {
		g, w := online[i], batch[i]
		if g.TotalTemporalPoints != w.TotalTemporalPoints ||
			g.SatisfiedTemporalPoints != w.SatisfiedTemporalPoints ||
			g.SatisfiedTraces != w.SatisfiedTraces ||
			g.ViolatedTraces != w.ViolatedTraces {
			t.Fatalf("%s: rule %d counters differ:\n got %+v\nwant %+v", label, i, g, w)
		}
		if len(g.Violations) != len(w.Violations) {
			t.Fatalf("%s: rule %d violations %d want %d", label, i, len(g.Violations), len(w.Violations))
		}
		for k := range w.Violations {
			if g.Violations[k].Seq != w.Violations[k].Seq ||
				g.Violations[k].TemporalPoint != w.Violations[k].TemporalPoint {
				t.Fatalf("%s: rule %d violation %d: got %+v want %+v", label, i, k, g.Violations[k], w.Violations[k])
			}
		}
	}
	gs, ws := NewSummary(online), NewSummary(batch)
	if gs.TotalViolations() != ws.TotalViolations() {
		t.Fatalf("%s: summary violations %d want %d", label, gs.TotalViolations(), ws.TotalViolations())
	}
	if gs.Render(db.Dict, 3) != ws.Render(db.Dict, 3) {
		t.Fatalf("%s: rendered summaries differ", label)
	}
}

func TestOnlineMatchesBatchOnWorkloads(t *testing.T) {
	for name, w := range tracesim.Workloads() {
		train := w.MustGenerate(30, 7)
		ruleSet := minedRules(t, train)
		if len(ruleSet) == 0 {
			t.Fatalf("%s: no rules mined", name)
		}
		checkOnlineMatchesBatch(t, name+"/train", train, ruleSet)

		fresh := w
		fresh.ViolationRate = 0.3
		db2 := fresh.MustGenerate(40, 99)
		merged := seqdb.NewDatabaseWithDict(train.Dict)
		for _, s := range db2.Sequences {
			names := make([]string, len(s))
			for i, ev := range s {
				names[i] = db2.Dict.Name(ev)
			}
			merged.AppendNames(names...)
		}
		checkOnlineMatchesBatch(t, name+"/fresh", merged, ruleSet)
	}
}

func TestOnlineMatchesBatchOnQuest(t *testing.T) {
	db := synth.MustGenerate(synth.Config{
		NumSequences: 40, AvgSequenceLength: 25, NumEvents: 40, AvgPatternLength: 5, Seed: 13,
	})
	ruleSet := minedRules(t, db)
	if len(ruleSet) == 0 {
		t.Skip("no rules mined from this configuration")
	}
	checkOnlineMatchesBatch(t, "quest", db, ruleSet)
}

func TestOnlineMatchesBatchRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for iter := 0; iter < 60; iter++ {
		db := seqdb.NewDatabase()
		alphabet := 2 + rng.Intn(5)
		for i := 0; i < alphabet; i++ {
			db.Dict.Intern(string(rune('a' + i)))
		}
		for i := 0; i < 2+rng.Intn(5); i++ {
			s := make(seqdb.Sequence, 1+rng.Intn(16))
			for j := range s {
				s[j] = seqdb.EventID(rng.Intn(alphabet))
			}
			db.Append(s)
		}
		var ruleSet []rules.Rule
		for r := 0; r < 1+rng.Intn(6); r++ {
			pre := make(seqdb.Pattern, 1+rng.Intn(3))
			for j := range pre {
				pre[j] = seqdb.EventID(rng.Intn(alphabet))
			}
			post := make(seqdb.Pattern, 1+rng.Intn(3))
			for j := range post {
				post[j] = seqdb.EventID(rng.Intn(alphabet))
			}
			ruleSet = append(ruleSet, rules.Rule{Pre: pre, Post: post})
		}
		checkOnlineMatchesBatch(t, "random", db, ruleSet)
	}
}

// TestCheckerRetiresSatisfiedPoints pins the online-specific behaviour: a
// pending temporal point retires as soon as the consequent completes, and
// points still pending at Close become violations.
func TestCheckerRetiresSatisfiedPoints(t *testing.T) {
	d := seqdb.NewDictionary()
	a, b, x := d.Intern("a"), d.Intern("b"), d.Intern("x")
	engine, err := NewEngine([]rules.Rule{{
		Pre:  seqdb.Pattern{a, b},
		Post: seqdb.Pattern{x},
	}})
	if err != nil {
		t.Fatal(err)
	}
	c := engine.NewChecker()
	reports := engine.NewReports()

	// Trace <a b x b>: tp at 1 retires when x arrives at 2; tp at 3 stays
	// open through Close and becomes the sole violation.
	c.Advance(a)
	c.Advance(b)
	if c.Unresolved() != 1 {
		t.Fatalf("after premise: %d unresolved want 1", c.Unresolved())
	}
	c.Advance(x)
	c.Advance(b)
	if c.Unresolved() != 1 {
		t.Fatalf("after second premise: %d unresolved want 1 (first should have retired)", c.Unresolved())
	}
	c.Close(0, reports)
	rep := reports[0]
	if rep.TotalTemporalPoints != 2 || rep.SatisfiedTemporalPoints != 1 ||
		rep.ViolatedTraces != 1 || len(rep.Violations) != 1 ||
		rep.Violations[0].TemporalPoint != 3 {
		t.Fatalf("unexpected report: %+v", rep)
	}

	// The checker reset on Close: a clean satisfied trace follows.
	c.Advance(a)
	c.Advance(b)
	c.Advance(x)
	c.Close(1, reports)
	if reports[0].SatisfiedTraces != 1 || reports[0].ViolatedTraces != 1 {
		t.Fatalf("after reuse: %+v", reports[0])
	}
}

// TestCheckerIgnoresForeignEvents feeds event ids outside the compiled
// alphabet; they must advance the position counter without disturbing state.
func TestCheckerIgnoresForeignEvents(t *testing.T) {
	d := seqdb.NewDictionary()
	a, x := d.Intern("a"), d.Intern("x")
	noise := seqdb.EventID(1000)
	engine, err := NewEngine([]rules.Rule{{Pre: seqdb.Pattern{a}, Post: seqdb.Pattern{x}}})
	if err != nil {
		t.Fatal(err)
	}
	c := engine.NewChecker()
	reports := engine.NewReports()
	for _, ev := range []seqdb.EventID{noise, a, noise, noise, x} {
		c.Advance(ev)
	}
	c.Close(0, reports)
	if reports[0].SatisfiedTraces != 1 || reports[0].TotalTemporalPoints != 1 ||
		reports[0].SatisfiedTemporalPoints != 1 {
		t.Fatalf("unexpected report: %+v", reports[0])
	}
	// The violation position reflects the absolute trace position, noise
	// included: premise at 1, consequent at 4.
	c2 := engine.NewChecker()
	reports2 := engine.NewReports()
	for _, ev := range []seqdb.EventID{noise, a, noise} {
		c2.Advance(ev)
	}
	c2.Close(0, reports2)
	if len(reports2[0].Violations) != 1 || reports2[0].Violations[0].TemporalPoint != 1 {
		t.Fatalf("unexpected violations: %+v", reports2[0].Violations)
	}
}
