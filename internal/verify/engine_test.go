package verify

import (
	"math/rand"
	"reflect"
	"testing"

	"specmine/internal/rules"
	"specmine/internal/seqdb"
	"specmine/internal/synth"
	"specmine/internal/tracesim"
)

// checkEngineMatchesPerRule asserts that the batched engine produces reports
// byte-identical to the per-rule CheckRule path on the given database.
func checkEngineMatchesPerRule(t *testing.T, label string, db *seqdb.Database, ruleSet []rules.Rule) {
	t.Helper()
	engine, err := NewEngine(ruleSet)
	if err != nil {
		t.Fatalf("%s: NewEngine: %v", label, err)
	}
	got := engine.Check(db)
	if len(got) != len(ruleSet) {
		t.Fatalf("%s: %d reports for %d rules", label, len(got), len(ruleSet))
	}
	for i, r := range ruleSet {
		want, err := CheckRule(db, r)
		if err != nil {
			t.Fatalf("%s: CheckRule: %v", label, err)
		}
		g := got[i]
		if g.TotalTemporalPoints != want.TotalTemporalPoints ||
			g.SatisfiedTemporalPoints != want.SatisfiedTemporalPoints ||
			g.SatisfiedTraces != want.SatisfiedTraces ||
			g.ViolatedTraces != want.ViolatedTraces {
			t.Fatalf("%s: rule %d counters differ:\n got %+v\nwant %+v", label, i, g, want)
		}
		if len(g.Violations) != len(want.Violations) {
			t.Fatalf("%s: rule %d violations %d want %d", label, i, len(g.Violations), len(want.Violations))
		}
		for k := range want.Violations {
			if g.Violations[k].Seq != want.Violations[k].Seq ||
				g.Violations[k].TemporalPoint != want.Violations[k].TemporalPoint {
				t.Fatalf("%s: rule %d violation %d: got %+v want %+v",
					label, i, k, g.Violations[k], want.Violations[k])
			}
		}
		if !reflect.DeepEqual(g.Formula, want.Formula) {
			t.Fatalf("%s: rule %d formula differs", label, i)
		}
		if g.HoldRate() != want.HoldRate() {
			t.Fatalf("%s: rule %d hold rate %v want %v", label, i, g.HoldRate(), want.HoldRate())
		}
	}
}

// minedRules mines a non-redundant rule set from the workload so the engine
// is exercised with realistic premises and consequents, including shared
// premise prefixes and duplicated consequents.
func minedRules(t *testing.T, db *seqdb.Database) []rules.Rule {
	t.Helper()
	for _, opts := range []rules.Options{
		{MinSeqSupportRel: 0.9, MinInstanceSupport: 1, MinConfidence: 0.9,
			MaxPremiseLength: 2, MaxConsequentLength: 2},
		{MinSeqSupportRel: 0.5, MinInstanceSupport: 1, MinConfidence: 0.8,
			MaxPremiseLength: 2, MaxConsequentLength: 2},
	} {
		res, err := rules.MineNonRedundant(db, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rules) > 0 {
			return res.Rules
		}
	}
	return nil
}

func TestEngineMatchesPerRuleOnWorkloads(t *testing.T) {
	for name, w := range tracesim.Workloads() {
		train := w.MustGenerate(30, 7)
		ruleSet := minedRules(t, train)
		if len(ruleSet) == 0 {
			t.Fatalf("%s: no rules mined", name)
		}
		// Check against the training traces and against fresh traffic with a
		// raised violation rate, sharing the training dictionary.
		checkEngineMatchesPerRule(t, name+"/train", train, ruleSet)
		fresh := w
		fresh.ViolationRate = 0.3
		db2, err := fresh.Generate(40, 99)
		if err != nil {
			t.Fatal(err)
		}
		merged := seqdb.NewDatabaseWithDict(train.Dict)
		for _, s := range db2.Sequences {
			names := make([]string, len(s))
			for i, ev := range s {
				names[i] = db2.Dict.Name(ev)
			}
			merged.AppendNames(names...)
		}
		checkEngineMatchesPerRule(t, name+"/fresh", merged, ruleSet)
	}
}

func TestEngineMatchesPerRuleRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 40; iter++ {
		db := seqdb.NewDatabase()
		alphabet := 3 + rng.Intn(4)
		for i := 0; i < alphabet; i++ {
			db.Dict.Intern(string(rune('a' + i)))
		}
		for i := 0; i < 2+rng.Intn(5); i++ {
			n := 1 + rng.Intn(14)
			s := make(seqdb.Sequence, n)
			for j := range s {
				s[j] = seqdb.EventID(rng.Intn(alphabet))
			}
			db.Append(s)
		}
		var ruleSet []rules.Rule
		for r := 0; r < 1+rng.Intn(8); r++ {
			pre := make(seqdb.Pattern, 1+rng.Intn(3))
			for j := range pre {
				pre[j] = seqdb.EventID(rng.Intn(alphabet))
			}
			post := make(seqdb.Pattern, 1+rng.Intn(3))
			for j := range post {
				post[j] = seqdb.EventID(rng.Intn(alphabet))
			}
			ruleSet = append(ruleSet, rules.Rule{Pre: pre, Post: post})
		}
		checkEngineMatchesPerRule(t, "random", db, ruleSet)
	}
}

func TestEngineOnSynthQuest(t *testing.T) {
	db := synth.MustGenerate(synth.Config{
		NumSequences: 40, AvgSequenceLength: 25, NumEvents: 40, AvgPatternLength: 5, Seed: 13,
	})
	ruleSet := minedRules(t, db)
	if len(ruleSet) == 0 {
		t.Skip("no rules mined from this configuration")
	}
	checkEngineMatchesPerRule(t, "quest", db, ruleSet)
}

func TestEngineSharesTrieAndPosts(t *testing.T) {
	d := seqdb.NewDictionary()
	mk := func(pre, post string) rules.Rule {
		return rules.Rule{Pre: seqdb.ParsePattern(d, pre), Post: seqdb.ParsePattern(d, post)}
	}
	engine, err := NewEngine([]rules.Rule{
		mk("a b c", "x"),
		mk("a b d", "x"),
		mk("a b", "y"),
		mk("q", "x"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Prefixes: "", "a", "a b" (shared by the first three; rule 4's prefix is
	// the root) -> 3 nodes. Posts: x (deduplicated), y -> 2.
	if engine.NumTrieNodes() != 3 {
		t.Errorf("NumTrieNodes=%d want 3", engine.NumTrieNodes())
	}
	if engine.NumDistinctPosts() != 2 {
		t.Errorf("NumDistinctPosts=%d want 2", engine.NumDistinctPosts())
	}
}

func TestEngineRejectsEmptySides(t *testing.T) {
	if _, err := NewEngine([]rules.Rule{{}}); err == nil {
		t.Errorf("engine accepted an empty rule")
	}
}
