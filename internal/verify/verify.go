// Package verify checks traces against mined (or hand-written)
// specifications. It serves the paper's second motivation for specification
// mining: "aid program verification (also runtime monitoring) in automating
// the process of formulating specifications" (Section 1). Mined rules become
// LTL properties; this package evaluates them over fresh traces and reports
// where they are violated, so regressions show up as conformance failures.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"specmine/internal/ltl"
	"specmine/internal/qre"
	"specmine/internal/rules"
	"specmine/internal/seqdb"
)

// RuleViolation describes one temporal point at which a rule's premise held
// but its consequent never followed.
type RuleViolation struct {
	// Rule is the violated rule.
	Rule rules.Rule
	// Seq is the index of the violating trace.
	Seq int
	// TemporalPoint is the position (0-based) at which the premise completed
	// without the consequent following.
	TemporalPoint int
}

// String renders the violation.
func (v RuleViolation) String(dict *seqdb.Dictionary) string {
	return fmt.Sprintf("trace %d, position %d: %s -> %s not followed",
		v.Seq, v.TemporalPoint, v.Rule.Pre.String(dict), v.Rule.Post.String(dict))
}

// RuleReport summarises checking one rule against a database.
type RuleReport struct {
	Rule rules.Rule
	// Formula is the rule's LTL form (Table 2 translation).
	Formula ltl.Formula
	// SatisfiedTraces and ViolatedTraces count traces on which the LTL
	// formula holds / fails.
	SatisfiedTraces int
	ViolatedTraces  int
	// TotalTemporalPoints and SatisfiedTemporalPoints give the finer-grained
	// view used for confidence-style reporting.
	TotalTemporalPoints     int
	SatisfiedTemporalPoints int
	// Violations lists each violating temporal point.
	Violations []RuleViolation
}

// HoldRate is the fraction of temporal points at which the rule held; 1.0 for
// rules whose premise never fires.
func (r RuleReport) HoldRate() float64 {
	if r.TotalTemporalPoints == 0 {
		return 1.0
	}
	return float64(r.SatisfiedTemporalPoints) / float64(r.TotalTemporalPoints)
}

// CheckRule evaluates one rule against every trace of db.
func CheckRule(db *seqdb.Database, rule rules.Rule) (RuleReport, error) {
	formula, err := ltl.FromRule(rule.Pre, rule.Post)
	if err != nil {
		return RuleReport{}, err
	}
	report := RuleReport{Rule: rule, Formula: formula}
	for si, s := range db.Sequences {
		violatedTrace := false
		tps := rules.TemporalPoints(s, rule.Pre)
		report.TotalTemporalPoints += len(tps)
		for _, tp := range tps {
			if seqdb.Sequence(s[tp+1:]).ContainsSubsequence(rule.Post) {
				report.SatisfiedTemporalPoints++
				continue
			}
			violatedTrace = true
			report.Violations = append(report.Violations, RuleViolation{Rule: rule, Seq: si, TemporalPoint: tp})
		}
		if violatedTrace {
			report.ViolatedTraces++
		} else {
			report.SatisfiedTraces++
		}
	}
	return report, nil
}

// CheckRules evaluates a set of rules and returns one report per rule, in the
// given order. It compiles the set into a batched Engine and checks all rules
// in one pass per trace; the reports are identical to calling CheckRule rule
// by rule.
func CheckRules(db *seqdb.Database, ruleSet []rules.Rule) ([]RuleReport, error) {
	engine, err := NewEngine(ruleSet)
	if err != nil {
		return nil, err
	}
	return engine.Check(db), nil
}

// PatternReport summarises checking one iterative pattern against a database.
type PatternReport struct {
	Pattern seqdb.Pattern
	// Instances is the number of pattern instances found.
	Instances int
	// Sequences is the number of traces containing at least one instance.
	Sequences int
	// PartialMatches counts positions at which a strict prefix of the pattern
	// (at least half of it) matched but the full pattern did not: candidate
	// anomalies for inspection.
	PartialMatches int
}

// CheckPattern locates instances of an iterative pattern and counts partial
// matches that stop short of completing the behaviour.
func CheckPattern(db *seqdb.Database, pattern seqdb.Pattern) PatternReport {
	report := PatternReport{Pattern: pattern.Clone()}
	if len(pattern) == 0 {
		return report
	}
	half := (len(pattern) + 1) / 2
	for si, s := range db.Sequences {
		insts := qre.FindInstances(s, pattern, si)
		report.Instances += len(insts)
		if len(insts) > 0 {
			report.Sequences++
		}
		starts := make(map[int]bool, len(insts))
		for _, in := range insts {
			starts[in.Start] = true
		}
		for i, ev := range s {
			if ev != pattern[0] || starts[i] {
				continue
			}
			if matched := prefixMatchLength(s, pattern, i); matched >= half {
				report.PartialMatches++
			}
		}
	}
	return report
}

// prefixMatchLength returns how many leading pattern events match when
// attempting an instance at position start.
func prefixMatchLength(s seqdb.Sequence, p seqdb.Pattern, start int) int {
	alphabet := p.Alphabet()
	if s[start] != p[0] {
		return 0
	}
	matched := 1
	pos := start
	for k := 1; k < len(p); k++ {
		pos++
		for pos < len(s) {
			if _, in := alphabet[s[pos]]; in {
				break
			}
			pos++
		}
		if pos >= len(s) || s[pos] != p[k] {
			return matched
		}
		matched++
	}
	return matched
}

// Summary aggregates rule reports into a ranked conformance summary: the
// rules most often violated come first.
type Summary struct {
	Reports []RuleReport
}

// NewSummary sorts the reports by the number of violations (descending).
func NewSummary(reports []RuleReport) Summary {
	sorted := make([]RuleReport, len(reports))
	copy(sorted, reports)
	sort.SliceStable(sorted, func(i, j int) bool {
		return len(sorted[i].Violations) > len(sorted[j].Violations)
	})
	return Summary{Reports: sorted}
}

// TotalViolations returns the violation count across all rules.
func (s Summary) TotalViolations() int {
	n := 0
	for _, r := range s.Reports {
		n += len(r.Violations)
	}
	return n
}

// Render writes a human-readable conformance report showing up to
// maxViolations violations per rule.
func (s Summary) Render(dict *seqdb.Dictionary, maxViolations int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "conformance summary: %d rules checked, %d violations\n", len(s.Reports), s.TotalViolations())
	for _, rep := range s.Reports {
		fmt.Fprintf(&b, "  %s -> %s: hold rate %.1f%%, %d violating traces\n",
			rep.Rule.Pre.String(dict), rep.Rule.Post.String(dict), rep.HoldRate()*100, rep.ViolatedTraces)
		limit := len(rep.Violations)
		if maxViolations > 0 && maxViolations < limit {
			limit = maxViolations
		}
		for _, v := range rep.Violations[:limit] {
			fmt.Fprintf(&b, "    %s\n", v.String(dict))
		}
		if limit < len(rep.Violations) {
			fmt.Fprintf(&b, "    ... %d more\n", len(rep.Violations)-limit)
		}
	}
	return b.String()
}
