package verify

import (
	"math/rand"
	"reflect"
	"testing"

	"specmine/internal/rules"
	"specmine/internal/seqdb"
	"specmine/internal/tracesim"
)

// checkIndexedMatchesOnline asserts the indexed (pull-based) evaluator
// produces reports byte-identical to the online automaton: same counters,
// same violations in the same order, same formulas.
func checkIndexedMatchesOnline(t *testing.T, label string, db *seqdb.Database, ruleSet []rules.Rule) {
	t.Helper()
	engine, err := NewEngine(ruleSet)
	if err != nil {
		t.Fatalf("%s: NewEngine: %v", label, err)
	}
	want := engine.Check(db)
	got := engine.CheckIndexed(db)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: indexed reports diverge from online automaton:\n got %+v\nwant %+v", label, got, want)
	}
}

func TestIndexedMatchesOnlineOnWorkloads(t *testing.T) {
	for name, w := range tracesim.Workloads() {
		train := w.MustGenerate(30, 7)
		ruleSet := minedRules(t, train)
		if len(ruleSet) == 0 {
			t.Fatalf("%s: no rules mined", name)
		}
		checkIndexedMatchesOnline(t, name+"/train", train, ruleSet)
		fresh := w
		fresh.ViolationRate = 0.3
		db2, err := fresh.Generate(40, 99)
		if err != nil {
			t.Fatal(err)
		}
		merged := seqdb.NewDatabaseWithDict(train.Dict)
		for _, s := range db2.Sequences {
			names := make([]string, len(s))
			for i, ev := range s {
				names[i] = db2.Dict.Name(ev)
			}
			merged.AppendNames(names...)
		}
		checkIndexedMatchesOnline(t, name+"/fresh", merged, ruleSet)
	}
}

// TestIndexedMatchesOnlineRandomized hammers the equivalence with random
// rules over random traces, including repeated events inside premises and
// consequents (the latest-embedding edge cases) and rules over events that
// never occur.
func TestIndexedMatchesOnlineRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 60; iter++ {
		db := seqdb.NewDatabase()
		alphabet := 3 + rng.Intn(4)
		for i := 0; i < alphabet+1; i++ { // one event more than traces use
			db.Dict.Intern(string(rune('a' + i)))
		}
		for i := 0; i < 2+rng.Intn(5); i++ {
			n := 1 + rng.Intn(14)
			s := make(seqdb.Sequence, n)
			for j := range s {
				s[j] = seqdb.EventID(rng.Intn(alphabet))
			}
			db.Append(s)
		}
		var ruleSet []rules.Rule
		for r := 0; r < 1+rng.Intn(8); r++ {
			pre := make(seqdb.Pattern, 1+rng.Intn(3))
			for j := range pre {
				pre[j] = seqdb.EventID(rng.Intn(alphabet + 1))
			}
			post := make(seqdb.Pattern, 1+rng.Intn(3))
			for j := range post {
				post[j] = seqdb.EventID(rng.Intn(alphabet + 1))
			}
			ruleSet = append(ruleSet, rules.Rule{Pre: pre, Post: post})
		}
		checkIndexedMatchesOnline(t, "random", db, ruleSet)
	}
}

// TestIndexedActionsSound pins the two gated actions against full evaluation
// on traces where their soundness conditions hold: ActionSatisfied on traces
// missing a premise event, ActionShortCircuit on traces missing a consequent
// event.
func TestIndexedActionsSound(t *testing.T) {
	d := seqdb.NewDictionary()
	mk := func(pre, post string) rules.Rule {
		return rules.Rule{Pre: seqdb.ParsePattern(d, pre), Post: seqdb.ParsePattern(d, post)}
	}
	ruleSet := []rules.Rule{mk("a b", "x"), mk("a", "y")}
	engine, err := NewEngine(ruleSet)
	if err != nil {
		t.Fatal(err)
	}
	db := seqdb.NewDatabaseWithDict(d)
	db.AppendNames("a", "b", "x")      // rule 0 satisfied, rule 1: y absent
	db.AppendNames("a", "x", "a", "b") // rule 0: violated (no x after ab)... x occurs before b only
	db.AppendNames("b", "x", "y")      // rule 0: a absent; rule 1: a absent
	idx := db.FlatIndex()

	want := engine.Check(db)
	got := engine.NewReports()
	c := engine.NewIndexedChecker(idx)
	actions := make([]RuleAction, engine.NumRules())
	for s := range db.Sequences {
		for r := 0; r < engine.NumRules(); r++ {
			contains := func(e seqdb.EventID) bool { return idx.SeqContains(s, e) }
			switch {
			case !engine.PremiseMayOccur(r, contains):
				actions[r] = ActionSatisfied
			case !engine.ConsequentMayOccur(r, contains):
				actions[r] = ActionShortCircuit
			default:
				actions[r] = ActionEvaluate
			}
		}
		c.CheckSeq(s, s, actions, got)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("gated reports diverge:\n got %+v\nwant %+v", got, want)
	}
}

func TestMetricsMerge(t *testing.T) {
	a := Metrics{TracesChecked: 1, TracesSkipped: 2, SegmentsChecked: 3, SegmentsSkipped: 4,
		RuleTraceGates: 5, ConsequentShortCircuits: 6, ProbesIssued: 7}
	b := a
	b.Merge(a)
	want := Metrics{TracesChecked: 2, TracesSkipped: 4, SegmentsChecked: 6, SegmentsSkipped: 8,
		RuleTraceGates: 10, ConsequentShortCircuits: 12, ProbesIssued: 14}
	if b != want {
		t.Fatalf("Merge: got %+v want %+v", b, want)
	}
}
