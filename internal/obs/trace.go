package obs

import (
	"sync"
	"time"
)

// Operation tracing: a fixed-capacity ring of the most recent operations
// (name, start, duration, outcome) plus a second ring that captures only
// operations slower than a threshold, so a burst of fast ops cannot flush the
// evidence of a slow one out of the window. Recording is mutex-guarded — the
// tracer is for operation-granularity events (flush barriers, rotations,
// compactions, snapshots), not per-event hot paths, which belong in counters
// and histograms.

// defaultSlowThreshold is the slow-op capture threshold a NewRegistry tracer
// starts with.
const defaultSlowThreshold = 25 * time.Millisecond

// Op is one recorded operation.
type Op struct {
	// Seq numbers operations in record order across both rings.
	Seq uint64 `json:"seq"`
	// Name identifies the operation ("wal.rotate", "segment.publish", ...).
	Name string `json:"name"`
	// Start is when the operation began.
	Start time.Time `json:"start"`
	// Dur is the measured duration.
	Dur time.Duration `json:"dur_ns"`
	// Err is the failure message, empty on success.
	Err string `json:"err,omitempty"`
}

// Tracer is the ring-buffered recent-operations log. Nil receivers no-op on
// every method, so a disabled pipeline can thread one through unconditionally.
type Tracer struct {
	mu        sync.Mutex
	seq       uint64
	threshold time.Duration
	ring      []Op
	n         int // valid entries in ring
	next      int
	slow      []Op
	slowN     int
	slowNext  int
}

// NewTracer returns a tracer keeping the last capacity operations and, in a
// separate ring of the same capacity, the last capacity operations slower
// than slowThreshold (<= 0 disables slow capture).
func NewTracer(capacity int, slowThreshold time.Duration) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		threshold: slowThreshold,
		ring:      make([]Op, capacity),
		slow:      make([]Op, capacity),
	}
}

// SetSlowThreshold changes the slow-op capture threshold.
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threshold = d
	t.mu.Unlock()
}

// Record logs an operation that started at start and just finished; err nil
// means success.
func (t *Tracer) Record(name string, start time.Time, err error) {
	t.RecordDur(name, start, time.Since(start), err)
}

// RecordDur is Record with an explicit duration.
func (t *Tracer) RecordDur(name string, start time.Time, dur time.Duration, err error) {
	if t == nil {
		return
	}
	op := Op{Name: name, Start: start, Dur: dur}
	if err != nil {
		op.Err = err.Error()
	}
	t.mu.Lock()
	t.seq++
	op.Seq = t.seq
	t.ring[t.next] = op
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	if t.threshold > 0 && dur >= t.threshold {
		t.slow[t.slowNext] = op
		t.slowNext = (t.slowNext + 1) % len(t.slow)
		if t.slowN < len(t.slow) {
			t.slowN++
		}
	}
	t.mu.Unlock()
}

// Span is an in-flight operation handle from Start; call End exactly once.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
}

// Start begins a span. On a nil tracer the returned span is inert (End
// no-ops), and time is not read.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// End records the span with its outcome.
func (s Span) End(err error) {
	if s.t == nil {
		return
	}
	s.t.Record(s.name, s.start, err)
}

// Recent returns the retained operations, oldest first.
func (t *Tracer) Recent() []Op {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return unwind(t.ring, t.n, t.next)
}

// Slow returns the retained slow operations, oldest first.
func (t *Tracer) Slow() []Op {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return unwind(t.slow, t.slowN, t.slowNext)
}

// unwind copies a ring's n valid entries ending just before next, in
// chronological order.
func unwind(ring []Op, n, next int) []Op {
	out := make([]Op, 0, n)
	start := (next - n + len(ring)) % len(ring)
	for i := 0; i < n; i++ {
		out = append(out, ring[(start+i)%len(ring)])
	}
	return out
}
