package obs

import (
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	c := new(Counter)
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestGaugeSetMax(t *testing.T) {
	g := new(Gauge)
	g.Set(10)
	g.SetMax(5)
	if got := g.Value(); got != 10 {
		t.Fatalf("SetMax lowered gauge to %d", got)
	}
	g.SetMax(20)
	if got := g.Value(); got != 20 {
		t.Fatalf("SetMax = %d, want 20", got)
	}
	g.Add(-3)
	if got := g.Value(); got != 17 {
		t.Fatalf("Add(-3) = %d, want 17", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := new(Histogram)
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 20, 21}, {1<<62 + 1, histBuckets - 1},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	want := make([]int64, histBuckets)
	var sum int64
	for _, c := range cases {
		want[c.bucket]++
		sum += c.v
	}
	if h.Sum() != sum {
		t.Fatalf("sum = %d, want %d", h.Sum(), sum)
	}
	for i := range want {
		if got := h.buckets[i].Load(); got != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	// A value inside bucket i must not exceed the bucket's upper bound.
	if b := BucketBound(3); b != 7 {
		t.Fatalf("BucketBound(3) = %d, want 7", b)
	}
	if b := BucketBound(histBuckets - 1); b != -1 {
		t.Fatalf("last bucket bound = %d, want -1 (+Inf)", b)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	tr := r.Ops()
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	tr.Record("op", time.Now(), nil)
	tr.SetSlowThreshold(time.Millisecond)
	sp := tr.Start("op")
	sp.End(nil)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must read zero")
	}
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", s)
	}
	if ops := tr.Recent(); ops != nil {
		t.Fatalf("nil tracer recent = %v, want nil", ops)
	}
}

func TestRegistryIdentityAndSnapshot(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("stream.events", "shard", "0")
	b := r.Counter("stream.events", "shard", "0")
	if a != b {
		t.Fatal("same name+labels must return the same handle")
	}
	other := r.Counter("stream.events", "shard", "1")
	if a == other {
		t.Fatal("different labels must be distinct series")
	}
	a.Add(3)
	other.Add(4)
	r.Gauge("cache.bytes").Set(42)
	r.Histogram("wal.fsync_ns").Observe(1000)

	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d series, want 4", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Fatalf("snapshot not sorted: %q > %q", snap[i-1].Name, snap[i].Name)
		}
	}
	s, ok := r.Find("stream.events", "shard", "1")
	if !ok || s.Value != 4 {
		t.Fatalf("Find shard=1 = %+v ok=%v, want value 4", s, ok)
	}
	if h, ok := r.Find("wal.fsync_ns"); !ok || h.Count != 1 || h.Sum != 1000 {
		t.Fatalf("histogram series = %+v ok=%v", h, ok)
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("x")
}

func TestTracerRings(t *testing.T) {
	tr := NewTracer(4, 10*time.Millisecond)
	base := time.Now()
	for i := 0; i < 6; i++ {
		tr.RecordDur("fast", base, time.Millisecond, nil)
	}
	tr.RecordDur("slow", base, 20*time.Millisecond, errors.New("boom"))
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent = %d ops, want ring capacity 4", len(recent))
	}
	if recent[3].Name != "slow" || recent[3].Err != "boom" {
		t.Fatalf("newest op = %+v, want the slow failure", recent[3])
	}
	for i := 1; i < len(recent); i++ {
		if recent[i-1].Seq >= recent[i].Seq {
			t.Fatal("recent ops not in chronological order")
		}
	}
	slow := tr.Slow()
	if len(slow) != 1 || slow[0].Name != "slow" {
		t.Fatalf("slow ring = %+v, want only the 20ms op", slow)
	}
	// Fast ops after the slow one must not evict it from the slow ring.
	for i := 0; i < 10; i++ {
		tr.RecordDur("fast", base, time.Millisecond, nil)
	}
	if slow := tr.Slow(); len(slow) != 1 {
		t.Fatalf("slow ring lost its entry: %+v", slow)
	}
}

func TestSpan(t *testing.T) {
	tr := NewTracer(8, 0)
	sp := tr.Start("rotate")
	sp.End(nil)
	ops := tr.Recent()
	if len(ops) != 1 || ops[0].Name != "rotate" || ops[0].Err != "" {
		t.Fatalf("span record = %+v", ops)
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("stream.events_acked", "shard", "0").Add(7)
	r.Gauge("cache.resident_bytes").Set(1024)
	h := r.Histogram("store.fsync_ns")
	h.Observe(3) // bucket 2, le=3
	h.Observe(3)
	h.Observe(100) // bucket 7, le=127

	var sb strings.Builder
	WritePrometheus(&sb, r)
	out := sb.String()
	for _, want := range []string{
		"# TYPE stream_events_acked counter",
		`stream_events_acked{shard="0"} 7`,
		"# TYPE cache_resident_bytes gauge",
		"cache_resident_bytes 1024",
		"# TYPE store_fsync_ns histogram",
		`store_fsync_ns_bucket{le="3"} 2`,
		`store_fsync_ns_bucket{le="127"} 3`,
		`store_fsync_ns_bucket{le="+Inf"} 3`,
		"store_fsync_ns_sum 106",
		"store_fsync_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Inc()
	r.Ops().RecordDur("flush", time.Now(), time.Millisecond, nil)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/debug/metrics"); code != 200 || !strings.Contains(body, "a_b 1") {
		t.Fatalf("/debug/metrics code=%d body=%q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, `"a.b"`) {
		t.Fatalf("/debug/vars code=%d body=%q", code, body)
	}
	if code, body := get("/debug/ops"); code != 200 || !strings.Contains(body, `"flush"`) {
		t.Fatalf("/debug/ops code=%d body=%q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ code=%d", code)
	}
}
