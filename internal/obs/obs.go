// Package obs is the process-wide observability layer: a low-overhead
// metrics registry (counters, gauges, fixed-bucket histograms — named,
// optionally labeled series with lock-free hot paths), a ring-buffered
// operation tracer (see trace.go), and an HTTP debug handler exposing
// everything as Prometheus text exposition, an expvar-style JSON snapshot,
// and the stdlib pprof endpoints (see handler.go).
//
// Design constraints, in order:
//
//  1. Instrumentation must be safe to leave on. Every handle method is
//     nil-receiver safe and every Registry getter returns a nil handle from a
//     nil Registry, so a disabled pipeline pays one predictable branch per
//     instrumentation point — no build tags, no interface dispatch, no
//     double-wiring. Enabled, the hot-path cost is one atomic add (counters,
//     gauges) or two plus a bit-scan (histograms).
//
//  2. Registration is cold, observation is hot. Series are resolved once at
//     component construction (a mutex-guarded map lookup) and the returned
//     handle is used forever after; nothing on the observation path touches
//     the registry again.
//
//  3. One snapshot API. Snapshot returns every series — kind, labels,
//     counter/gauge value or histogram buckets — in deterministic order; the
//     Prometheus and JSON renderings in handler.go are views over it, and
//     tests assert against it directly.
package obs

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// counterStripes is the number of independently updated cells a Counter
// spreads its increments over. Concurrent producers (the sharded ingester,
// parallel miners) land on different cells with high probability, so the
// cache line carrying a hot counter is not a global serialisation point.
// Must be a power of two.
const counterStripes = 8

// cell is a cache-line-padded atomic, so adjacent stripes never false-share.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing, striped atomic counter. The zero
// value is ready to use; nil receivers no-op, so a handle obtained from a nil
// (disabled) Registry costs one branch per Inc/Add.
type Counter struct {
	cells [counterStripes]cell
}

// stripe picks a cell. rand/v2's top-level generator is per-P (runtime
// cheaprand), so the pick is lock-free and concurrent adders scatter across
// stripes instead of colliding on one cache line.
func stripe() int { return int(rand.Uint64() & (counterStripes - 1)) }

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.cells[stripe()].v.Add(1)
}

// Add adds n. Counters are monotone; callers must not pass negative n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.cells[stripe()].v.Add(n)
}

// Value sums the stripes. It is a moment-in-time read: concurrent adds may or
// may not be included, but the value never goes backwards between reads that
// happen-after the adds they observe.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var v int64
	for i := range c.cells {
		v += c.cells[i].v.Load()
	}
	return v
}

// Gauge is an instantaneous value: queue depths, resident bytes, watermarks.
// The zero value is ready; nil receivers no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative to subtract) — the form shared gauges use, so
// concurrent owners aggregate instead of overwriting each other.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is greater — a lock-free high-water mark.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed histogram geometry: bucket i counts observations v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Bucket 0 holds v <= 0.
// 40 buckets cover 1ns..~9min in nanoseconds and 1..~550G in plain units
// (batch sizes, byte counts); larger observations clamp into the last bucket.
const histBuckets = 40

// Histogram is a fixed-bucket, power-of-two histogram with lock-free
// observation: one bit-scan plus three atomic adds. The zero value is ready;
// nil receivers no-op. Values are unit-free int64s — by convention, series
// named *_ns observe nanoseconds and *_bytes observe bytes.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records v.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
		if i >= histBuckets {
			i = histBuckets - 1
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// BucketBound returns bucket i's inclusive upper bound (2^i - 1); the last
// bucket is unbounded.
func BucketBound(i int) int64 {
	if i >= histBuckets-1 {
		return -1 // +Inf
	}
	return int64(1)<<uint(i) - 1
}

// Kind discriminates series types in a Snapshot.
type Kind int

const (
	// KindCounter is a monotone counter.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value.
	KindGauge
	// KindHistogram is a fixed-bucket histogram.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Label is one name=value dimension of a series.
type Label struct {
	Key, Value string
}

// Series is one named instrument in a Snapshot.
type Series struct {
	// Name is the registered series name (dotted; the Prometheus view
	// sanitises it).
	Name string
	// Labels are the series dimensions, sorted by key.
	Labels []Label
	// Kind says which of the value fields are meaningful.
	Kind Kind
	// Value carries counter and gauge values.
	Value int64
	// Count, Sum and Buckets carry histogram state; Buckets[i] is the
	// non-cumulative count of bucket i (see BucketBound).
	Count, Sum int64
	Buckets    []int64
}

// entry is a registered instrument; exactly one of c/g/h is non-nil.
type entry struct {
	name   string
	labels []Label
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named series and the process tracer. The zero value is not
// usable — call NewRegistry — but a nil *Registry is: every getter returns a
// nil handle and Snapshot returns nothing, which is how instrumentation is
// disabled.
type Registry struct {
	mu     sync.Mutex
	series map[string]*entry
	order  []*entry // registration order; Snapshot sorts its copy
	tracer *Tracer
}

// NewRegistry returns an empty registry with a default Tracer (capacity 256,
// slow-op threshold 25ms).
func NewRegistry() *Registry {
	return &Registry{
		series: make(map[string]*entry),
		tracer: NewTracer(256, defaultSlowThreshold),
	}
}

// key renders the unique series identity: name plus sorted labels.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte('\x00')
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// parseLabels turns variadic "k1", "v1", "k2", "v2" pairs into sorted Labels;
// it panics on an odd count (a wiring bug, not a runtime condition).
func parseLabels(kv []string) []Label {
	if len(kv) == 0 {
		return nil
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", kv))
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		labels = append(labels, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	return labels
}

// get resolves (registering on first use) the series name+labels as kind. A
// kind clash is a wiring bug and panics with both kinds named.
func (r *Registry) get(name string, kind Kind, kv []string) *entry {
	labels := parseLabels(kv)
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.series[k]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: series %q registered as %v, requested as %v", name, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, labels: labels, kind: kind}
	switch kind {
	case KindCounter:
		e.c = new(Counter)
	case KindGauge:
		e.g = new(Gauge)
	case KindHistogram:
		e.h = new(Histogram)
	}
	r.series[k] = e
	r.order = append(r.order, e)
	return e
}

// Counter returns the named counter, registering it on first use. Labels are
// "key", "value" pairs. A nil Registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, KindCounter, labelPairs).c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, KindGauge, labelPairs).g
}

// Histogram returns the named histogram, registering it on first use.
func (r *Registry) Histogram(name string, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, KindHistogram, labelPairs).h
}

// Ops returns the registry's operation tracer; nil from a nil Registry.
func (r *Registry) Ops() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Snapshot returns every registered series with its current value, sorted by
// name then labels — the one consistent read API every exposition format and
// test is built on. Each series value is read atomically; the snapshot as a
// whole is not a barrier (concurrent updates may land between series), which
// is the standard scrape contract.
func (r *Registry) Snapshot() []Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := append([]*entry(nil), r.order...)
	r.mu.Unlock()
	out := make([]Series, 0, len(entries))
	for _, e := range entries {
		s := Series{Name: e.name, Labels: e.labels, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			s.Value = e.c.Value()
		case KindGauge:
			s.Value = e.g.Value()
		case KindHistogram:
			s.Count = e.h.count.Load()
			s.Sum = e.h.sum.Load()
			s.Buckets = make([]int64, histBuckets)
			for i := range s.Buckets {
				s.Buckets[i] = e.h.buckets[i].Load()
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelString(out[i].Labels) < labelString(out[j].Labels)
	})
	return out
}

// Find returns the snapshot series with the given name and labels, or false.
// Test helper grade: it scans a fresh snapshot.
func (r *Registry) Find(name string, labelPairs ...string) (Series, bool) {
	want := labelString(parseLabels(labelPairs))
	for _, s := range r.Snapshot() {
		if s.Name == name && labelString(s.Labels) == want {
			return s, true
		}
	}
	return Series{}, false
}

// labelString renders labels canonically for sorting and matching.
func labelString(labels []Label) string {
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
		sb.WriteByte(',')
	}
	return sb.String()
}
