package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// HTTP debug surface. Handler serves three views over one registry:
//
//	/debug/metrics   Prometheus text exposition (version 0.0.4) — counters,
//	                 gauges, and histograms with cumulative le buckets
//	/debug/vars      expvar-style JSON: every series plus uptime
//	/debug/ops       the tracer's recent and slow operation rings as JSON
//	/debug/pprof/*   the stdlib pprof handlers (index, profile, heap, ...)
//
// The handler only reads snapshots; scraping never blocks an instrumentation
// hot path beyond the snapshot's atomic loads.

// Handler returns an http.Handler serving the registry's debug endpoints.
// The registry may be nil, in which case the metric endpoints serve empty
// documents (pprof still works).
func Handler(r *Registry) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(varsDoc(r, start))
	})
	mux.HandleFunc("/debug/ops", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"recent": r.Ops().Recent(),
			"slow":   r.Ops().Slow(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// promName sanitises a dotted series name into the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var sb strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			sb.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			sb.WriteRune(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promLabels renders {k="v",...}; extra appends one more pair (the histogram
// le label) when its key is non-empty.
func promLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", promName(l.Key), l.Value)
	}
	if extraKey != "" {
		if len(labels) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", extraKey, extraVal)
	}
	sb.WriteByte('}')
	return sb.String()
}

// WritePrometheus renders the registry snapshot in Prometheus text
// exposition format. Histograms emit the standard cumulative _bucket / _sum /
// _count triple; bucket boundaries are the fixed power-of-two geometry
// (BucketBound).
func WritePrometheus(w interface{ Write([]byte) (int, error) }, r *Registry) {
	typed := make(map[string]bool)
	for _, s := range r.Snapshot() {
		name := promName(s.Name)
		if !typed[name] {
			typed[name] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", name, s.Kind)
		}
		switch s.Kind {
		case KindCounter, KindGauge:
			fmt.Fprintf(w, "%s%s %d\n", name, promLabels(s.Labels, "", ""), s.Value)
		case KindHistogram:
			cum := int64(0)
			for i, b := range s.Buckets {
				cum += b
				if b == 0 && i < len(s.Buckets)-1 {
					continue // sparse rendering: only emit buckets that moved
				}
				le := "+Inf"
				if bound := BucketBound(i); bound >= 0 {
					le = fmt.Sprintf("%d", bound)
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s.Labels, "le", le), cum)
			}
			fmt.Fprintf(w, "%s_sum%s %d\n", name, promLabels(s.Labels, "", ""), s.Sum)
			fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(s.Labels, "", ""), s.Count)
		}
	}
}

// varsSeries is the JSON shape of one series in /debug/vars.
type varsSeries struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Kind    string            `json:"kind"`
	Value   int64             `json:"value,omitempty"`
	Count   int64             `json:"count,omitempty"`
	Sum     int64             `json:"sum,omitempty"`
	Buckets map[string]int64  `json:"buckets,omitempty"`
}

func varsDoc(r *Registry, start time.Time) map[string]any {
	snap := r.Snapshot()
	series := make([]varsSeries, 0, len(snap))
	for _, s := range snap {
		v := varsSeries{Name: s.Name, Kind: s.Kind.String()}
		if len(s.Labels) > 0 {
			v.Labels = make(map[string]string, len(s.Labels))
			for _, l := range s.Labels {
				v.Labels[l.Key] = l.Value
			}
		}
		switch s.Kind {
		case KindCounter, KindGauge:
			v.Value = s.Value
		case KindHistogram:
			v.Count, v.Sum = s.Count, s.Sum
			v.Buckets = make(map[string]int64)
			for i, b := range s.Buckets {
				if b == 0 {
					continue
				}
				le := "+Inf"
				if bound := BucketBound(i); bound >= 0 {
					le = fmt.Sprintf("%d", bound)
				}
				v.Buckets[le] = b
			}
		}
		series = append(series, v)
	}
	return map[string]any{
		"uptime_s": int64(time.Since(start).Seconds()),
		"series":   series,
	}
}
